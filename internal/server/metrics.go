package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// Live metrics in the Prometheus text exposition format, hand-rolled so
// the repository stays dependency-free. Everything is exported under the
// slipd_ prefix: job state gauges, queue depth, run counters, cache
// counters/ratio, and per-label host-side run latency histograms (the
// label is the kernel for single runs and the suite kind otherwise).

// latencyBuckets are the histogram upper bounds in seconds. Simulated
// kernels at test scale finish in milliseconds; paper-scale suites take
// minutes — the buckets cover both ends.
var latencyBuckets = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

type histogram struct {
	counts []uint64 // one per bucket, plus +Inf at the end
	sum    float64
	total  uint64
}

func (h *histogram) observe(v float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(latencyBuckets)+1)
	}
	i := sort.SearchFloat64s(latencyBuckets, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

type metrics struct {
	mu sync.Mutex

	jobsByState map[State]int
	submitted   uint64 // POST /jobs accepted
	deduped     uint64 // submissions coalesced onto an in-flight job
	runs        uint64 // underlying simulation executions started
	shed        uint64 // submissions 503'd because the queue was full
	panics      uint64 // worker panics recovered (job failed, worker lived)
	timeouts    uint64 // jobs failed by the per-job timeout
	faultsInj   uint64 // faults injected by fault-plan runs
	recoveries  uint64 // divergence recoveries observed in fault-plan runs
	recovered   uint64 // jobs rehydrated from the journal in a terminal state
	requeued    uint64 // crash-interrupted jobs put back on the queue at startup
	retries     uint64 // executions of a job beyond its first attempt
	journalErrs uint64 // journal/store writes that failed (durability degraded)
	localFalls  uint64 // jobs a coordinator executed locally for want of workers
	replShed    uint64 // submissions 503'd because replication lagged every peer
	latency     map[string]*histogram
}

func newMetrics() *metrics {
	return &metrics{jobsByState: map[State]int{}, latency: map[string]*histogram{}}
}

// jobCreated records a new job entering the given state.
func (m *metrics) jobCreated(st State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted++
	m.jobsByState[st]++
}

// jobTransition moves one job between state gauges.
func (m *metrics) jobTransition(from, to State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsByState[from]--
	m.jobsByState[to]++
}

// dedupHit records a submission answered by an already in-flight job.
func (m *metrics) dedupHit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deduped++
}

// runStarted records one underlying simulation execution.
func (m *metrics) runStarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runs++
}

// runsTotal reads the execution counter (used by the single-flight test).
func (m *metrics) runsTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runs
}

// requestShed records a submission rejected because the queue was full.
func (m *metrics) requestShed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed++
}

// panicked records a worker panic that was recovered.
func (m *metrics) panicked() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

// timedOut records a job failed by the per-job timeout.
func (m *metrics) timedOut() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.timeouts++
}

// jobRestored bumps only the state gauge for a job rehydrated at startup
// (unlike jobCreated it leaves the submission counter alone: the job was
// counted by the process that first accepted it).
func (m *metrics) jobRestored(st State, requeue bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsByState[st]++
	if requeue {
		m.requeued++
	} else {
		m.recovered++
	}
}

// retried records an execution of a job beyond its first attempt.
func (m *metrics) retried() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retries++
}

// journalError records a failed journal or result-store write. The
// daemon keeps serving from memory; durability is degraded, not lost —
// at worst the next restart re-executes work.
func (m *metrics) journalError() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalErrs++
}

// localFallback records a job a coordinator ran in-process because no
// worker could take it (the degraded path).
func (m *metrics) localFallback() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.localFalls++
}

// replicationShed records a submission refused under replication-lag
// backpressure.
func (m *metrics) replicationShed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replShed++
}

// stateCounts reads the queued/running gauges (used by worker heartbeats).
func (m *metrics) stateCounts() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobsByState[StateQueued], m.jobsByState[StateRunning]
}

// addFaults accumulates a fault-plan run's injected-fault and recovery
// counts.
func (m *metrics) addFaults(injected, recovered uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faultsInj += injected
	m.recoveries += recovered
}

// observeLatency records a completed run's host wall-clock under a label.
func (m *metrics) observeLatency(label string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latency[label]
	if !ok {
		h = &histogram{}
		m.latency[label] = h
	}
	h.observe(d.Seconds())
}

// durabilityStats carries the point-in-time durability gauges into the
// exposition: journal size and disk-store lookup counters (all zero when
// the daemon runs without a data dir).
type durabilityStats struct {
	JournalBytes int64
	StoreHits    uint64
	StoreMisses  uint64
}

// write renders the exposition. Series are emitted in sorted order so the
// output is deterministic and diffable.
// breakerValue maps a PeerStatus.Breaker name onto the gauge scale
// (0 closed, 1 half-open, 2 open).
func breakerValue(name string) int {
	switch name {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}

func (m *metrics) write(w io.Writer, queueDepth int, cache CacheStats, dur durabilityStats, cluster *ClusterStats, chaos func() uint64, tenants []tenantStat, campaigns []campaignStat) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP slipd_jobs_submitted_total Jobs accepted via POST /jobs.")
	fmt.Fprintln(w, "# TYPE slipd_jobs_submitted_total counter")
	fmt.Fprintf(w, "slipd_jobs_submitted_total %d\n", m.submitted)

	fmt.Fprintln(w, "# HELP slipd_jobs_deduplicated_total Submissions coalesced onto an in-flight identical job.")
	fmt.Fprintln(w, "# TYPE slipd_jobs_deduplicated_total counter")
	fmt.Fprintf(w, "slipd_jobs_deduplicated_total %d\n", m.deduped)

	fmt.Fprintln(w, "# HELP slipd_runs_total Underlying simulation executions (cache misses that ran).")
	fmt.Fprintln(w, "# TYPE slipd_runs_total counter")
	fmt.Fprintf(w, "slipd_runs_total %d\n", m.runs)

	fmt.Fprintln(w, "# HELP slipd_requests_shed_total Submissions rejected 503 because the job queue was full.")
	fmt.Fprintln(w, "# TYPE slipd_requests_shed_total counter")
	fmt.Fprintf(w, "slipd_requests_shed_total %d\n", m.shed)

	fmt.Fprintln(w, "# HELP slipd_panics_total Worker panics recovered (the job failed; the worker survived).")
	fmt.Fprintln(w, "# TYPE slipd_panics_total counter")
	fmt.Fprintf(w, "slipd_panics_total %d\n", m.panics)

	fmt.Fprintln(w, "# HELP slipd_timeouts_total Jobs failed by the per-job timeout.")
	fmt.Fprintln(w, "# TYPE slipd_timeouts_total counter")
	fmt.Fprintf(w, "slipd_timeouts_total %d\n", m.timeouts)

	fmt.Fprintln(w, "# HELP slipd_faults_injected_total Faults injected by fault-plan and chaos runs.")
	fmt.Fprintln(w, "# TYPE slipd_faults_injected_total counter")
	fmt.Fprintf(w, "slipd_faults_injected_total %d\n", m.faultsInj)

	fmt.Fprintln(w, "# HELP slipd_recoveries_total Slipstream divergence recoveries observed in fault-plan and chaos runs.")
	fmt.Fprintln(w, "# TYPE slipd_recoveries_total counter")
	fmt.Fprintf(w, "slipd_recoveries_total %d\n", m.recoveries)

	fmt.Fprintln(w, "# HELP slipd_jobs_recovered_total Jobs rehydrated from the journal in a terminal state at startup.")
	fmt.Fprintln(w, "# TYPE slipd_jobs_recovered_total counter")
	fmt.Fprintf(w, "slipd_jobs_recovered_total %d\n", m.recovered)

	fmt.Fprintln(w, "# HELP slipd_jobs_requeued_total Crash-interrupted jobs put back on the queue at startup.")
	fmt.Fprintln(w, "# TYPE slipd_jobs_requeued_total counter")
	fmt.Fprintf(w, "slipd_jobs_requeued_total %d\n", m.requeued)

	fmt.Fprintln(w, "# HELP slipd_retries_total Executions of a job beyond its first attempt.")
	fmt.Fprintln(w, "# TYPE slipd_retries_total counter")
	fmt.Fprintf(w, "slipd_retries_total %d\n", m.retries)

	fmt.Fprintln(w, "# HELP slipd_journal_errors_total Failed journal or result-store writes (durability degraded).")
	fmt.Fprintln(w, "# TYPE slipd_journal_errors_total counter")
	fmt.Fprintf(w, "slipd_journal_errors_total %d\n", m.journalErrs)

	fmt.Fprintln(w, "# HELP slipd_journal_bytes On-disk size of the write-ahead job journal.")
	fmt.Fprintln(w, "# TYPE slipd_journal_bytes gauge")
	fmt.Fprintf(w, "slipd_journal_bytes %d\n", dur.JournalBytes)

	fmt.Fprintln(w, "# HELP slipd_store_hits_total Disk result-store hits (reads served without a run).")
	fmt.Fprintln(w, "# TYPE slipd_store_hits_total counter")
	fmt.Fprintf(w, "slipd_store_hits_total %d\n", dur.StoreHits)

	fmt.Fprintln(w, "# HELP slipd_store_misses_total Disk result-store misses.")
	fmt.Fprintln(w, "# TYPE slipd_store_misses_total counter")
	fmt.Fprintf(w, "slipd_store_misses_total %d\n", dur.StoreMisses)

	// Cluster series appear only on a coordinator; a plain slipd has no
	// fleet to report on.
	if cluster != nil {
		fmt.Fprintln(w, "# HELP slipd_workers Fleet workers by health state.")
		fmt.Fprintln(w, "# TYPE slipd_workers gauge")
		fmt.Fprintf(w, "slipd_workers{state=\"live\"} %d\n", cluster.Live)
		fmt.Fprintf(w, "slipd_workers{state=\"suspect\"} %d\n", cluster.Suspect)
		fmt.Fprintf(w, "slipd_workers{state=\"dead\"} %d\n", cluster.Dead)

		fmt.Fprintln(w, "# HELP slipd_claims_total Claim-table outcomes: leases granted, claims settled done/failed, duplicate terminal reports discarded.")
		fmt.Fprintln(w, "# TYPE slipd_claims_total counter")
		fmt.Fprintf(w, "slipd_claims_total{outcome=\"granted\"} %d\n", cluster.ClaimsGranted)
		fmt.Fprintf(w, "slipd_claims_total{outcome=\"done\"} %d\n", cluster.ClaimsCompleted)
		fmt.Fprintf(w, "slipd_claims_total{outcome=\"failed\"} %d\n", cluster.ClaimsFailed)
		fmt.Fprintf(w, "slipd_claims_total{outcome=\"duplicate\"} %d\n", cluster.ClaimsDuplicate)

		fmt.Fprintln(w, "# HELP slipd_claim_contention_total Hedge grants: a second worker claimed a job whose lease was still live.")
		fmt.Fprintln(w, "# TYPE slipd_claim_contention_total counter")
		fmt.Fprintf(w, "slipd_claim_contention_total %d\n", cluster.ClaimContention)

		fmt.Fprintln(w, "# HELP slipd_lease_expirations_total Claim leases that expired and went back to pending for reclaim.")
		fmt.Fprintln(w, "# TYPE slipd_lease_expirations_total counter")
		fmt.Fprintf(w, "slipd_lease_expirations_total %d\n", cluster.LeaseExpirations)

		fmt.Fprintln(w, "# HELP slipd_hedges_started_total Claims opened to a second worker for running past the per-kernel latency threshold.")
		fmt.Fprintln(w, "# TYPE slipd_hedges_started_total counter")
		fmt.Fprintf(w, "slipd_hedges_started_total %d\n", cluster.HedgesStarted)

		fmt.Fprintln(w, "# HELP slipd_hedges_won_total Hedged copies that finished before the primary.")
		fmt.Fprintln(w, "# TYPE slipd_hedges_won_total counter")
		fmt.Fprintf(w, "slipd_hedges_won_total %d\n", cluster.HedgesWon)

		fmt.Fprintln(w, "# HELP slipd_local_fallbacks_total Jobs the coordinator executed in-process because no worker could take them.")
		fmt.Fprintln(w, "# TYPE slipd_local_fallbacks_total counter")
		fmt.Fprintf(w, "slipd_local_fallbacks_total %d\n", m.localFalls)

		fmt.Fprintln(w, "# HELP slipd_replication_shed_total Submissions refused 503 because replication lagged every peer past the bound.")
		fmt.Fprintln(w, "# TYPE slipd_replication_shed_total counter")
		fmt.Fprintf(w, "slipd_replication_shed_total %d\n", m.replShed)

		if len(cluster.Peers) > 0 {
			fmt.Fprintln(w, "# HELP slipd_breaker_state Replication circuit breaker per peer (0 closed, 1 half-open, 2 open).")
			fmt.Fprintln(w, "# TYPE slipd_breaker_state gauge")
			for _, p := range cluster.Peers {
				fmt.Fprintf(w, "slipd_breaker_state{peer=%q} %d\n", p.URL, breakerValue(p.Breaker))
			}
		}
	}

	if chaos != nil {
		fmt.Fprintln(w, "# HELP slipd_chaos_injected_total Control-plane network faults manufactured by the netchaos layer in this process.")
		fmt.Fprintln(w, "# TYPE slipd_chaos_injected_total counter")
		fmt.Fprintf(w, "slipd_chaos_injected_total %d\n", chaos())
	}

	fmt.Fprintln(w, "# HELP slipd_jobs Jobs currently in each state.")
	fmt.Fprintln(w, "# TYPE slipd_jobs gauge")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed} {
		fmt.Fprintf(w, "slipd_jobs{state=%q} %d\n", st, m.jobsByState[st])
	}

	fmt.Fprintln(w, "# HELP slipd_queue_depth Jobs waiting for a worker.")
	fmt.Fprintln(w, "# TYPE slipd_queue_depth gauge")
	fmt.Fprintf(w, "slipd_queue_depth %d\n", queueDepth)

	fmt.Fprintln(w, "# HELP slipd_cache_hits_total Result cache hits.")
	fmt.Fprintln(w, "# TYPE slipd_cache_hits_total counter")
	fmt.Fprintf(w, "slipd_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintln(w, "# HELP slipd_cache_misses_total Result cache misses.")
	fmt.Fprintln(w, "# TYPE slipd_cache_misses_total counter")
	fmt.Fprintf(w, "slipd_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintln(w, "# HELP slipd_cache_evictions_total Entries evicted to hold the byte budget.")
	fmt.Fprintln(w, "# TYPE slipd_cache_evictions_total counter")
	fmt.Fprintf(w, "slipd_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintln(w, "# HELP slipd_cache_bytes Bytes currently cached.")
	fmt.Fprintln(w, "# TYPE slipd_cache_bytes gauge")
	fmt.Fprintf(w, "slipd_cache_bytes %d\n", cache.Bytes)
	fmt.Fprintln(w, "# HELP slipd_cache_entries Entries currently cached.")
	fmt.Fprintln(w, "# TYPE slipd_cache_entries gauge")
	fmt.Fprintf(w, "slipd_cache_entries %d\n", cache.Entries)
	fmt.Fprintln(w, "# HELP slipd_cache_hit_ratio Hits over lookups since start.")
	fmt.Fprintln(w, "# TYPE slipd_cache_hit_ratio gauge")
	fmt.Fprintf(w, "slipd_cache_hit_ratio %.4f\n", cache.HitRatio())

	// Tenant series: admission-control outcomes and fair-queue state per
	// tenant. The scheduler hands them over pre-sorted by tenant name.
	if len(tenants) > 0 {
		fmt.Fprintln(w, "# HELP slipd_tenant_weight Weighted-fair-queueing weight per tenant.")
		fmt.Fprintln(w, "# TYPE slipd_tenant_weight gauge")
		for _, t := range tenants {
			fmt.Fprintf(w, "slipd_tenant_weight{tenant=%q} %d\n", t.Name, t.Weight)
		}
		fmt.Fprintln(w, "# HELP slipd_tenant_queued Jobs a tenant currently has waiting in the fair queue.")
		fmt.Fprintln(w, "# TYPE slipd_tenant_queued gauge")
		for _, t := range tenants {
			fmt.Fprintf(w, "slipd_tenant_queued{tenant=%q} %d\n", t.Name, t.Queued)
		}
		fmt.Fprintln(w, "# HELP slipd_tenant_admitted_total Submissions admitted past a tenant's token bucket and backlog bound.")
		fmt.Fprintln(w, "# TYPE slipd_tenant_admitted_total counter")
		for _, t := range tenants {
			fmt.Fprintf(w, "slipd_tenant_admitted_total{tenant=%q} %d\n", t.Name, t.Admitted)
		}
		fmt.Fprintln(w, "# HELP slipd_tenant_limited_total Submissions refused 429 per tenant, by admission check.")
		fmt.Fprintln(w, "# TYPE slipd_tenant_limited_total counter")
		for _, t := range tenants {
			fmt.Fprintf(w, "slipd_tenant_limited_total{tenant=%q,reason=\"rate\"} %d\n", t.Name, t.LimitedRate)
			fmt.Fprintf(w, "slipd_tenant_limited_total{tenant=%q,reason=\"backlog\"} %d\n", t.Name, t.LimitedBacklog)
		}
		fmt.Fprintln(w, "# HELP slipd_tenant_dispatched_total Jobs handed to workers per tenant by the fair scheduler.")
		fmt.Fprintln(w, "# TYPE slipd_tenant_dispatched_total counter")
		for _, t := range tenants {
			fmt.Fprintf(w, "slipd_tenant_dispatched_total{tenant=%q} %d\n", t.Name, t.Dispatched)
		}
	}

	// Campaign series: DAG totals by state, cell outcomes, and the
	// per-campaign cache-collapse ratio.
	if len(campaigns) > 0 {
		byState := map[string]int{}
		var cellsDone, cellsFailed, cellsSkipped, cellsCollapsed int
		for _, c := range campaigns {
			byState[c.State]++
			cellsDone += c.Done
			cellsFailed += c.Failed
			cellsSkipped += c.Skipped
			cellsCollapsed += c.Collapsed
		}
		fmt.Fprintln(w, "# HELP slipd_campaigns Campaigns by state.")
		fmt.Fprintln(w, "# TYPE slipd_campaigns gauge")
		for _, st := range []string{campaignRunning, campaignDone, campaignFailed, campaignCancelled} {
			fmt.Fprintf(w, "slipd_campaigns{state=%q} %d\n", st, byState[st])
		}
		fmt.Fprintln(w, "# HELP slipd_campaign_cells_total Campaign cells settled, by outcome (collapsed counts done cells served by cache or dedup).")
		fmt.Fprintln(w, "# TYPE slipd_campaign_cells_total counter")
		fmt.Fprintf(w, "slipd_campaign_cells_total{outcome=\"done\"} %d\n", cellsDone)
		fmt.Fprintf(w, "slipd_campaign_cells_total{outcome=\"failed\"} %d\n", cellsFailed)
		fmt.Fprintf(w, "slipd_campaign_cells_total{outcome=\"skipped\"} %d\n", cellsSkipped)
		fmt.Fprintf(w, "slipd_campaign_cells_total{outcome=\"collapsed\"} %d\n", cellsCollapsed)
		fmt.Fprintln(w, "# HELP slipd_campaign_cache_collapse_ratio Fraction of a campaign's cells served without a fresh run.")
		fmt.Fprintln(w, "# TYPE slipd_campaign_cache_collapse_ratio gauge")
		for _, c := range campaigns {
			ratio := 0.0
			if c.Total > 0 {
				ratio = float64(c.Collapsed) / float64(c.Total)
			}
			fmt.Fprintf(w, "slipd_campaign_cache_collapse_ratio{campaign=%q} %.4f\n", c.ID, ratio)
		}
	}

	fmt.Fprintln(w, "# HELP slipd_run_seconds Host wall-clock of completed runs by kernel or suite kind.")
	fmt.Fprintln(w, "# TYPE slipd_run_seconds histogram")
	labels := make([]string, 0, len(m.latency))
	for l := range m.latency {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		h := m.latency[l]
		cum := uint64(0)
		for i, le := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "slipd_run_seconds_bucket{job=%q,le=%q} %d\n", l, formatLE(le), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "slipd_run_seconds_bucket{job=%q,le=\"+Inf\"} %d\n", l, cum)
		fmt.Fprintf(w, "slipd_run_seconds_sum{job=%q} %g\n", l, h.sum)
		fmt.Fprintf(w, "slipd_run_seconds_count{job=%q} %d\n", l, h.total)
	}
}

// formatLE renders a bucket bound the way Prometheus expects (no
// scientific notation, no trailing zeros).
func formatLE(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

// postCampaign submits a campaign spec and returns the response plus
// the decoded view on 201.
func postCampaign(t *testing.T, ts *httptest.Server, key, body string) (*http.Response, CampaignView) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/campaigns", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /campaigns: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		Campaign CampaignView `json:"campaign"`
	}
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode campaign response: %v", err)
		}
	}
	return resp, out.Campaign
}

// getCampaign fetches the current view of a campaign.
func getCampaign(t *testing.T, ts *httptest.Server, id string) CampaignView {
	t.Helper()
	body, code := getBody(t, ts.URL+"/campaigns/"+id)
	if code != http.StatusOK {
		t.Fatalf("GET /campaigns/%s = %d: %s", id, code, body)
	}
	var v CampaignView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// awaitCampaign polls until the campaign reaches a terminal state.
func awaitCampaign(t *testing.T, ts *httptest.Server, id string) CampaignView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		v := getCampaign(t, ts, id)
		if v.State != campaignRunning {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still running: %+v", id, v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func cellState(t *testing.T, v CampaignView, id string) CampaignCellView {
	t.Helper()
	for _, c := range v.Cells {
		if c.ID == id {
			return c
		}
	}
	t.Fatalf("campaign %s has no cell %q: %+v", v.ID, id, v.Cells)
	return CampaignCellView{}
}

func campCellBody(id string, nodes int, after ...string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"id":%q,"spec":{"kind":"run","kernel":"CG","nodes":%d}`, id, nodes)
	if len(after) > 0 {
		deps, _ := json.Marshal(after)
		fmt.Fprintf(&sb, `,"after":%s`, deps)
	}
	sb.WriteString("}")
	return sb.String()
}

// TestCampaignValidation: malformed DAGs are 400s with a diagnostic,
// never accepted.
func TestCampaignValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty", `{"cells":[]}`, "at least one cell"},
		{"unknown field", `{"cellz":[]}`, "unknown field"},
		{"bad id", `{"cells":[{"id":"a/b","spec":{"kind":"run","kernel":"CG"}}]}`, "invalid id"},
		{"dup id", fmt.Sprintf(`{"cells":[%s,%s]}`, campCellBody("a", 2), campCellBody("a", 3)), "duplicate cell id"},
		{"unknown dep", fmt.Sprintf(`{"cells":[%s]}`, campCellBody("a", 2, "ghost")), "unknown cell"},
		{"self dep", fmt.Sprintf(`{"cells":[%s]}`, campCellBody("a", 2, "a")), "depends on itself"},
		{"dup edge", fmt.Sprintf(`{"cells":[%s,%s]}`, campCellBody("a", 2), campCellBody("b", 3, "a", "a")), "twice"},
		{"cycle", fmt.Sprintf(`{"cells":[%s,%s,%s]}`, campCellBody("a", 2, "c"), campCellBody("b", 3, "a"), campCellBody("c", 4, "b")), "cycle"},
		{"bad policy", fmt.Sprintf(`{"policy":"explode","cells":[%s]}`, campCellBody("a", 2)), "unknown policy"},
		{"bad priority", fmt.Sprintf(`{"priority":"urgent","cells":[%s]}`, campCellBody("a", 2)), "unknown priority"},
		{"bad cell spec", `{"cells":[{"id":"a","spec":{"kind":"run","kernel":"CG","nodes":999}}]}`, "out of range"},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/campaigns", strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		bufio.NewReader(resp.Body).WriteTo(&b)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, resp.StatusCode, b.String())
			continue
		}
		if !strings.Contains(b.String(), tc.wantErr) {
			t.Errorf("%s: error %q missing %q", tc.name, b.String(), tc.wantErr)
		}
	}
}

// TestCampaignRunsDAGInOrder: a three-cell chain completes, respects
// dependency order, and the identical middle cell collapses through
// the result cache.
func TestCampaignRunsDAGInOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := fmt.Sprintf(`{"name":"sweep","cells":[%s,%s,%s]}`,
		campCellBody("a", 5),
		campCellBody("b", 5, "a"), // identical spec to a → cache collapse
		campCellBody("c", 6, "b"),
	)
	resp, v := postCampaign(t, ts, "", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /campaigns = %d", resp.StatusCode)
	}
	if v.State != campaignRunning || v.TotalCells != 3 || v.Policy != PolicyContinue {
		t.Fatalf("created view = %+v", v)
	}
	final := awaitCampaign(t, ts, v.ID)
	if final.State != campaignDone || final.DoneCells != 3 || final.FailedCells != 0 {
		t.Fatalf("final = %+v", final)
	}
	if final.CollapsedCells != 1 || !cellState(t, final, "b").Collapsed {
		t.Fatalf("cell b should have collapsed through the cache: %+v", final)
	}
	if got := final.CacheCollapseRatio; got < 0.33 || got > 0.34 {
		t.Fatalf("collapse ratio = %v, want 1/3", got)
	}
	// The ratio is exported per campaign on /metrics.
	metrics, _ := getBody(t, ts.URL+"/metrics")
	for _, line := range []string{
		fmt.Sprintf(`slipd_campaign_cache_collapse_ratio{campaign="%s"} 0.3333`, v.ID),
		`slipd_campaigns{state="done"} 1`,
		`slipd_campaign_cells_total{outcome="done"} 3`,
		`slipd_campaign_cells_total{outcome="collapsed"} 1`,
	} {
		if !strings.Contains(metrics, line) {
			t.Errorf("metrics missing %q", line)
		}
	}
	// Each cell's job carries the campaign identity.
	cj := cellState(t, final, "c")
	jb, code := getBody(t, ts.URL+"/jobs/"+cj.Job)
	if code != http.StatusOK || !strings.Contains(jb, fmt.Sprintf(`"campaign":"%s"`, v.ID)) || !strings.Contains(jb, `"cell":"c"`) {
		t.Fatalf("cell job view = %d %s", code, jb)
	}
}

// haltGate wires the deterministic failure drill shared by the halt and
// continue tests: cell "a" panics in the worker, and any other cell is
// held until the campaign has processed a's failure, so the skip
// decision is made before surviving cells run.
func haltGate(t *testing.T, s *Server, campID *atomic.Value) {
	t.Helper()
	s.testDuringRun = func(j *Job) {
		if j.cell == "a" {
			panic("injected cell failure")
		}
	}
	s.testBeforeRun = func(j *Job) {
		if j.campaign == "" || j.cell == "a" {
			return
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			id, _ := campID.Load().(string)
			s.campMu.Lock()
			camp := s.campaigns[id]
			s.campMu.Unlock()
			if camp != nil {
				camp.mu.Lock()
				settled := camp.cells["a"].state == cellFailed
				camp.mu.Unlock()
				if settled {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Errorf("cell a never settled failed")
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestCampaignHaltSkipsPending: under policy halt, a cell failure
// deterministically skips every not-yet-launched cell; already-queued
// cells finish.
func TestCampaignHaltSkipsPending(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var campID atomic.Value
	haltGate(t, s, &campID)

	body := fmt.Sprintf(`{"policy":"halt","cells":[%s,%s,%s]}`,
		campCellBody("a", 5),      // fails
		campCellBody("b", 6),      // independent, launched at submit
		campCellBody("c", 7, "b"), // pending when a fails → halted skip
	)
	resp, v := postCampaign(t, ts, "", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	campID.Store(v.ID)
	final := awaitCampaign(t, ts, v.ID)
	if final.State != campaignFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if a := cellState(t, final, "a"); a.State != cellFailed || !strings.Contains(a.Error, "panic") {
		t.Fatalf("cell a = %+v", a)
	}
	if b := cellState(t, final, "b"); b.State != cellDone {
		t.Fatalf("cell b = %+v, want done (already launched when the halt hit)", b)
	}
	c := cellState(t, final, "c")
	if c.State != cellSkipped || !strings.Contains(c.Error, "halted") {
		t.Fatalf("cell c = %+v, want skipped by halt", c)
	}
	if final.DoneCells != 1 || final.FailedCells != 1 || final.SkippedCells != 1 {
		t.Fatalf("rollup = %+v", final)
	}
}

// TestCampaignContinueSkipsOnlyDependents: under the default continue
// policy the failure cascades to transitive dependents and nothing
// else.
func TestCampaignContinueSkipsOnlyDependents(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var campID atomic.Value
	haltGate(t, s, &campID)

	body := fmt.Sprintf(`{"cells":[%s,%s,%s,%s]}`,
		campCellBody("a", 5),      // fails
		campCellBody("b", 6),      // independent → runs
		campCellBody("c", 7, "a"), // direct dependent → skipped
		campCellBody("d", 8, "c"), // transitive dependent → skipped
	)
	resp, v := postCampaign(t, ts, "", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	campID.Store(v.ID)
	final := awaitCampaign(t, ts, v.ID)
	if final.State != campaignFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if b := cellState(t, final, "b"); b.State != cellDone {
		t.Fatalf("cell b = %+v, want done (continue policy keeps independent work)", b)
	}
	for _, id := range []string{"c", "d"} {
		c := cellState(t, final, id)
		if c.State != cellSkipped || !strings.Contains(c.Error, "dependency") {
			t.Fatalf("cell %s = %+v, want dependency skip", id, c)
		}
	}
}

// TestCampaignAdmissionCharge: a campaign is charged per cell, so a
// rate-limited tenant's next submission refuses 429 with Retry-After.
func TestCampaignAdmissionCharge(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Tenants: []TenantConfig{
			{Name: "metered", Key: "sk-m", TenantLimits: TenantLimits{Rate: 0.001, Burst: 2}},
		},
	})
	// Two cells drain the whole burst (soft drain: admissible while at
	// least one token remains).
	body := fmt.Sprintf(`{"cells":[%s,%s]}`, campCellBody("a", 2), campCellBody("b", 3))
	resp, _ := postCampaign(t, ts, "sk-m", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first campaign = %d", resp.StatusCode)
	}
	resp, _ = postCampaign(t, ts, "sk-m", fmt.Sprintf(`{"cells":[%s]}`, campCellBody("a", 4)))
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("second campaign = %d retry-after=%q, want 429", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestCampaignSSERollups: the events stream replays progress rollups
// and closes with a terminal state event.
func TestCampaignSSERollups(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := fmt.Sprintf(`{"cells":[%s,%s]}`, campCellBody("a", 5), campCellBody("b", 6, "a"))
	resp, v := postCampaign(t, ts, "", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	awaitCampaign(t, ts, v.ID)

	stream, code := getBody(t, ts.URL+"/campaigns/"+v.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events = %d", code)
	}
	for _, want := range []string{
		"campaign created: 2 cells",
		"cell a done (1/2 done",
		"cell b done (2/2 done",
		"event: state\ndata: done",
	} {
		if !strings.Contains(stream, want) {
			t.Errorf("SSE stream missing %q:\n%s", want, stream)
		}
	}
}

// TestCampaignCancel: DELETE cancels queued cells, skips pending ones,
// and settles the campaign as cancelled.
func TestCampaignCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	gate := make(chan struct{})
	s.testBeforeRun = func(*Job) { <-gate }
	defer close(gate)

	// Plug the worker with an unrelated job so campaign cells stay put.
	submitAs(t, ts, "", specWithNodes(2, ""))
	body := fmt.Sprintf(`{"cells":[%s,%s]}`, campCellBody("a", 5), campCellBody("b", 6, "a"))
	resp, v := postCampaign(t, ts, "", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", dresp.StatusCode)
	}
	final := awaitCampaign(t, ts, v.ID)
	if final.State != campaignCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if b := cellState(t, final, "b"); b.State != cellSkipped {
		t.Fatalf("pending cell b = %+v, want skipped", b)
	}
}

// TestCampaignNotFound: unknown ids 404 on every campaign route.
func TestCampaignNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, url := range []string{"/campaigns/campaign-99", "/campaigns/campaign-99/events"} {
		if _, code := getBody(t, ts.URL+url); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", url, code)
		}
	}
}

// TestCampaignResumesAfterRestart: a running campaign journaled before
// a crash is rebuilt on open and driven to completion.
func TestCampaignResumesAfterRestart(t *testing.T) {
	dir := t.TempDir()
	spec := CampaignSpec{
		Name:   "resume",
		Policy: PolicyContinue,
		Cells: []CampaignCellSpec{
			{ID: "a", Spec: JobSpec{Kind: KindRun, Kernel: "CG", Nodes: 5}},
			{ID: "b", After: []string{"a"}, Spec: JobSpec{Kind: KindRun, Kernel: "CG", Nodes: 6}},
		},
	}
	specJSON, _ := json.Marshal(spec)
	fabricateJournal(t, dir,
		store.Record{Job: "campaign-3", Campaign: "campaign-3", State: campaignRunning, Spec: specJSON, Tenant: DefaultTenant},
	)
	s, ts := openDurable(t, durableCfg(dir))
	defer shutdown(t, s)
	final := awaitCampaign(t, ts, "campaign-3")
	if final.State != campaignDone || final.DoneCells != 2 {
		t.Fatalf("resumed campaign = %+v", final)
	}
	// The id counter moved past the replayed campaign.
	resp, v := postCampaign(t, ts, "", fmt.Sprintf(`{"cells":[%s]}`, campCellBody("solo", 7)))
	if resp.StatusCode != http.StatusCreated || v.ID == "campaign-3" {
		t.Fatalf("new campaign after replay = %d %s", resp.StatusCode, v.ID)
	}
}

// TestCampaignRestartSkipsDoneCells: cells journaled done are not
// re-run; only the unfinished remainder executes.
func TestCampaignRestartSkipsDoneCells(t *testing.T) {
	dir := t.TempDir()

	// First life: run a one-cell campaign to completion so the cache
	// and journal hold cell a's result.
	a, ats := openDurable(t, durableCfg(dir))
	resp, v := postCampaign(t, ats, "", fmt.Sprintf(`{"cells":[%s]}`, campCellBody("a", 5)))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	awaitCampaign(t, ats, v.ID)
	shutdown(t, a)

	// Second life: the campaign restores terminal without re-running.
	b, bts := openDurable(t, durableCfg(dir))
	defer shutdown(t, b)
	final := getCampaign(t, bts, v.ID)
	if final.State != campaignDone || final.DoneCells != 1 {
		t.Fatalf("restored campaign = %+v", final)
	}
	if b.RunsTotal() != 0 {
		t.Fatalf("restart re-ran %d jobs, want 0", b.RunsTotal())
	}
}

package server

import (
	"bytes"
	"sync"
)

// broker fans a job's progress lines out to any number of SSE
// subscribers. The experiments runner already serializes progress writes
// line-per-call behind its own mutex; the broker re-splits on newlines
// anyway so a future writer that chunks differently cannot tear lines.
// Lines are retained for the job's lifetime so a late subscriber replays
// the full history before streaming live.
type broker struct {
	mu      sync.Mutex
	partial []byte
	lines   []string
	subs    map[chan string]struct{}
	closed  bool
}

func newBroker() *broker {
	return &broker{subs: map[chan string]struct{}{}}
}

// Write implements io.Writer for use as a runner progress sink.
func (b *broker) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return len(p), nil
	}
	b.partial = append(b.partial, p...)
	for {
		i := bytes.IndexByte(b.partial, '\n')
		if i < 0 {
			break
		}
		line := string(b.partial[:i])
		b.partial = append(b.partial[:0], b.partial[i+1:]...)
		b.lines = append(b.lines, line)
		for ch := range b.subs {
			select {
			case ch <- line:
			default: // slow subscriber: drop rather than stall the runner
			}
		}
	}
	return len(p), nil
}

// subscribe returns the history so far and a channel carrying subsequent
// lines. The channel is closed when the job finishes. If the job already
// finished, the channel comes back closed and only the replay matters.
func (b *broker) subscribe() ([]string, chan string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay := make([]string, len(b.lines))
	copy(replay, b.lines)
	ch := make(chan string, 64)
	if b.closed {
		close(ch)
		return replay, ch
	}
	b.subs[ch] = struct{}{}
	return replay, ch
}

// unsubscribe detaches a live subscriber (no-op after close).
func (b *broker) unsubscribe(ch chan string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[ch]; ok {
		delete(b.subs, ch)
		close(ch)
	}
}

// close flushes any unterminated partial line and ends every subscriber's
// stream. Idempotent.
func (b *broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if len(b.partial) > 0 {
		line := string(b.partial)
		b.partial = nil
		b.lines = append(b.lines, line)
		for ch := range b.subs {
			select {
			case ch <- line:
			default:
			}
		}
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
		delete(b.subs, ch)
	}
}

// history returns all lines emitted so far.
func (b *broker) history() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.lines))
	copy(out, b.lines)
	return out
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// runSpecBody is the canonical fast job used throughout: a single CG run
// at test scale on 4 CMPs.
const runSpecBody = `{"kind":"run","kernel":"CG","nodes":4}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// submit POSTs a spec and decodes the response envelope.
func submit(t *testing.T, ts *httptest.Server, body string) (submitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return sr, resp.StatusCode
}

// await blocks until the job reaches a terminal state.
func await(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		t.Fatalf("job %s not registered", id)
	}
	select {
	case <-j.done:
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", id, j.stateNow())
	}
	return j
}

func getBody(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(b), resp.StatusCode
}

func TestSubmitRunJobLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	sr, code := submit(t, ts, runSpecBody)
	if code != http.StatusCreated {
		t.Fatalf("POST = %d, want 201", code)
	}
	if sr.Job.State != StateQueued || sr.Dedup || sr.Cached {
		t.Fatalf("submit response = %+v", sr)
	}
	if sr.Job.Spec.Scale != "test" || sr.Job.Spec.Mode != "slipstream" ||
		sr.Job.Spec.Sync != "GLOBAL_SYNC" || sr.Job.Spec.Sched != "static" {
		t.Fatalf("defaults not applied in normalized spec: %+v", sr.Job.Spec)
	}
	j := await(t, s, sr.Job.ID)
	if st := j.stateNow(); st != StateDone {
		t.Fatalf("final state = %s, want done (err %q)", st, j.snapshot().Error)
	}

	body, code := getBody(t, ts.URL+"/jobs/"+sr.Job.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("GET result = %d: %s", code, body)
	}
	for _, want := range []string{"CG", "cycles:", "verification: PASSED"} {
		if !strings.Contains(body, want) {
			t.Fatalf("result missing %q:\n%s", want, body)
		}
	}

	view, code := getBody(t, ts.URL+"/jobs/"+sr.Job.ID)
	if code != http.StatusOK || !strings.Contains(view, `"state":"done"`) {
		t.Fatalf("GET job = %d: %s", code, view)
	}
	list, code := getBody(t, ts.URL+"/jobs")
	if code != http.StatusOK || !strings.Contains(list, sr.Job.ID) {
		t.Fatalf("GET jobs = %d: %s", code, list)
	}
}

// TestSingleFlight50 is the acceptance criterion: 50 concurrent identical
// submissions produce exactly one underlying simulation run and 50
// byte-identical results (served by the in-flight job or the cache —
// either way nothing runs twice).
func TestSingleFlight50(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	const n = 50
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			sr, code := submit(t, ts, runSpecBody)
			if code != http.StatusOK && code != http.StatusCreated {
				t.Errorf("POST %d = %d", i, code)
				return
			}
			ids[i] = sr.Job.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var first []byte
	for i, id := range ids {
		j := await(t, s, id)
		if st := j.stateNow(); st != StateDone {
			t.Fatalf("job %s state = %s (err %q)", id, st, j.snapshot().Error)
		}
		result, _ := j.resultBytes()
		if i == 0 {
			first = result
			continue
		}
		if !bytes.Equal(result, first) {
			t.Fatalf("job %s result differs from first:\n%s\nvs\n%s", id, result, first)
		}
	}
	if len(first) == 0 {
		t.Fatal("empty result bytes")
	}
	if got := s.RunsTotal(); got != 1 {
		t.Fatalf("runs total = %d, want exactly 1 underlying run", got)
	}
	metrics, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "slipd_runs_total 1\n") {
		t.Fatalf("metrics missing slipd_runs_total 1:\n%s", metrics)
	}
	if !strings.Contains(metrics, fmt.Sprintf("slipd_jobs_submitted_total %d", n)) &&
		!strings.Contains(metrics, "slipd_jobs_deduplicated_total") {
		t.Fatalf("metrics missing submission counters:\n%s", metrics)
	}
}

func TestCacheHitServesSecondSubmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	sr1, _ := submit(t, ts, runSpecBody)
	j1 := await(t, s, sr1.Job.ID)
	r1, _ := j1.resultBytes()

	sr2, code := submit(t, ts, runSpecBody)
	if code != http.StatusCreated {
		t.Fatalf("second POST = %d", code)
	}
	if !sr2.Cached || sr2.Job.State != StateDone || !sr2.Job.Cached {
		t.Fatalf("second submission not served from cache: %+v", sr2)
	}
	j2 := await(t, s, sr2.Job.ID)
	r2, _ := j2.resultBytes()
	if !bytes.Equal(r1, r2) {
		t.Fatal("cached result differs from original")
	}
	if got := s.RunsTotal(); got != 1 {
		t.Fatalf("runs total = %d after cache hit, want 1", got)
	}

	// A spelling-variant spec (same canonical form) must also hit.
	sr3, _ := submit(t, ts, `{"kind":"run","kernel":"cg","nodes":4,"scale":"TEST","verify":true}`)
	if !sr3.Cached {
		t.Fatalf("canonically-equal spec missed the cache: %+v", sr3)
	}

	metrics, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "slipd_cache_hits_total 2\n") {
		t.Fatalf("metrics missing cache hits:\n%s", metrics)
	}
	if !strings.Contains(metrics, "slipd_cache_hit_ratio 0.6667\n") {
		t.Fatalf("metrics missing hit ratio 2/3:\n%s", metrics)
	}
}

func TestDifferentSpecsDoNotCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	sr1, _ := submit(t, ts, runSpecBody)
	sr2, _ := submit(t, ts, `{"kind":"run","kernel":"CG","nodes":4,"mode":"single"}`)
	if sr1.Job.Key == sr2.Job.Key {
		t.Fatal("distinct specs share a cache key")
	}
	await(t, s, sr1.Job.ID)
	await(t, s, sr2.Job.ID)
	if got := s.RunsTotal(); got != 2 {
		t.Fatalf("runs total = %d, want 2", got)
	}
}

func TestValidationRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	bad := []string{
		`not json`,
		`{"kind":"run","kernel":"CG"} trailing`,
		`{"kind":"run","kernel":"CG","bogus":1}`,
		`{}`,
		`{"kind":"warp"}`,
		`{"kind":"run"}`,
		`{"kind":"run","kernel":"ZZ"}`,
		`{"kind":"run","kernel":"CG","nodes":-1}`,
		`{"kind":"run","kernel":"CG","scale":"huge"}`,
		`{"kind":"run","kernel":"CG","mode":"triple"}`,
		`{"kind":"run","kernel":"CG","sync":"SOMETIMES"}`,
		`{"kind":"run","kernel":"CG","sched":"chaotic"}`,
		`{"kind":"run","kernel":"CG","chunk":-2}`,
		`{"kind":"static","kernel":"CG"}`,
		`{"kind":"static","kernels":["CG","??"]}`,
		`{"kind":"scaling","kernel":"CG"}`,
		`{"kind":"scaling","kernel":"CG","node_counts":[2,2]}`,
		`{"kind":"scaling","kernel":"CG","node_counts":[0]}`,
		`{"kind":"tokens","kernel":"CG"}`,
		`{"kind":"tokens","kernel":"CG","token_counts":[-1]}`,
		`{"kind":"run","kernel":"CG","params":{"nope":1}}`,
	}
	for _, body := range bad {
		if _, code := submit(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("body %s → %d, want 400", body, code)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d, want 404", resp.StatusCode)
	}
}

func TestResultConflictWhilePending(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1})
	s.testBeforeRun = func(*Job) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sr, _ := submit(t, ts, runSpecBody)
	if _, code := getBody(t, ts.URL+"/jobs/"+sr.Job.ID+"/result"); code != http.StatusConflict {
		t.Fatalf("result while pending = %d, want 409", code)
	}
	close(release)
	await(t, s, sr.Job.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1})
	s.testBeforeRun = func(*Job) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Job A occupies the only worker; B waits in the queue. B must use a
	// different spec or it would coalesce onto A.
	srA, _ := submit(t, ts, runSpecBody)
	srB, _ := submit(t, ts, `{"kind":"run","kernel":"MG","nodes":4}`)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+srB.Job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if view.State != StateFailed || !strings.Contains(view.Error, "cancelled") {
		t.Fatalf("cancelled queued job = %+v", view)
	}

	close(release)
	jA := await(t, s, srA.Job.ID)
	if jA.stateNow() != StateDone {
		t.Fatalf("job A = %s, want done", jA.stateNow())
	}
	jB := await(t, s, srB.Job.ID)
	if jB.stateNow() != StateFailed {
		t.Fatalf("job B = %s, want failed", jB.stateNow())
	}
	// The worker must have skipped B: only A ran.
	if got := s.RunsTotal(); got != 1 {
		t.Fatalf("runs total = %d, want 1 (cancelled job must not run)", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1})
	s.testBeforeRun = func(*Job) { <-release }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit(t, ts, runSpecBody)                              // occupies the worker
	submit(t, ts, `{"kind":"run","kernel":"MG","nodes":4}`) // fills the queue
	_, code := submit(t, ts, `{"kind":"run","kernel":"LU","nodes":4}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("POST to full queue = %d, want 503", code)
	}
	// The shed job must not linger in the single-flight index: once the
	// queue drains, resubmitting it must be accepted.
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestShutdownDrains is the graceful-termination acceptance criterion:
// with jobs queued and running, Shutdown finishes all of them and
// returns nil, and the server refuses new work while draining. cmd/slipd
// wires SIGTERM to exactly this call.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specs := []string{
		runSpecBody,
		`{"kind":"run","kernel":"MG","nodes":4}`,
		`{"kind":"run","kernel":"LU","nodes":4}`,
		`{"kind":"run","kernel":"SP","nodes":4}`,
	}
	ids := make([]string, len(specs))
	for i, b := range specs {
		sr, code := submit(t, ts, b)
		if code != http.StatusCreated {
			t.Fatalf("POST %d = %d", i, code)
		}
		ids[i] = sr.Job.ID
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown returned %v, want nil (clean drain)", err)
	}
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if st := j.stateNow(); st != StateDone {
			t.Fatalf("job %s = %s after drain, want done (err %q)", id, st, j.snapshot().Error)
		}
	}
	if _, code := submit(t, ts, runSpecBody); code != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", code)
	}
	if _, code := getBody(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", code)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown = %v, want nil no-op", err)
	}
}

// TestShutdownDeadlineCancelsInFlight: when the drain deadline passes,
// in-flight work is cancelled, jobs fail (partial results are never
// cached), and Shutdown reports the deadline error.
func TestShutdownDeadlineCancels(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s := New(Config{Workers: 1})
	var once sync.Once
	s.testBeforeRun = func(*Job) {
		once.Do(func() { close(started) })
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One job held at the hook, one static suite queued behind it.
	srA, _ := submit(t, ts, runSpecBody)
	srB, _ := submit(t, ts, `{"kind":"static","kernels":["CG"],"nodes":4}`)
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already passed: drain must cut over to cancellation
	errCh := make(chan error, 1)
	go func() { errCh <- s.Shutdown(ctx) }()
	close(release)
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("shutdown = %v, want context.Canceled", err)
	}

	await(t, s, srA.Job.ID)
	jB := await(t, s, srB.Job.ID)
	// Job B ran under the cancelled run context: it must fail with partial
	// cell errors, and the failure must not be cached.
	if st := jB.stateNow(); st != StateFailed {
		t.Fatalf("job B = %s after deadline shutdown, want failed", st)
	}
	if !strings.Contains(jB.snapshot().Error, "context canceled") {
		t.Fatalf("job B error = %q, want cancellation", jB.snapshot().Error)
	}
	if _, ok := s.cache.Get(jB.Key); ok {
		t.Fatal("failed job result was cached")
	}
}

func TestSSEStreamReplaysProgressAndState(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	sr, _ := submit(t, ts, `{"kind":"scaling","kernel":"CG","node_counts":[2,4]}`)
	await(t, s, sr.Job.ID)

	body, code := getBody(t, ts.URL+"/jobs/"+sr.Job.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("GET events = %d", code)
	}
	if !strings.Contains(body, "event: progress\ndata: ") {
		t.Fatalf("no progress events replayed:\n%s", body)
	}
	if !strings.HasSuffix(strings.TrimSpace(body), "event: state\ndata: done") &&
		!strings.Contains(body, "event: state\ndata: done") {
		t.Fatalf("missing terminal state event:\n%s", body)
	}
}

func TestMetricsExposition(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	sr, _ := submit(t, ts, runSpecBody)
	await(t, s, sr.Job.ID)

	body, code := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE slipd_jobs_submitted_total counter",
		"slipd_jobs_submitted_total 1",
		"# TYPE slipd_jobs gauge",
		`slipd_jobs{state="done"} 1`,
		`slipd_jobs{state="queued"} 0`,
		"slipd_queue_depth 0",
		"slipd_cache_misses_total 1",
		"slipd_cache_entries 1",
		"# TYPE slipd_run_seconds histogram",
		`slipd_run_seconds_bucket{job="CG",le="+Inf"} 1`,
		`slipd_run_seconds_count{job="CG"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestSuiteJobEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("suite job at test scale is slow for -short")
	}
	s, ts := newTestServer(t, Config{Workers: 1, SuiteJobs: 4})
	sr, _ := submit(t, ts, `{"kind":"static","kernels":["CG","MG"],"nodes":4}`)
	j := await(t, s, sr.Job.ID)
	if st := j.stateNow(); st != StateDone {
		t.Fatalf("static suite = %s (err %q)", st, j.snapshot().Error)
	}
	body, _ := getBody(t, ts.URL+"/jobs/"+sr.Job.ID+"/result")
	for _, want := range []string{"CG", "MG", "slipstream"} {
		if !strings.Contains(body, want) {
			t.Fatalf("suite result missing %q:\n%s", want, body)
		}
	}
	if len(j.broker.history()) == 0 {
		t.Fatal("suite emitted no progress lines")
	}
}

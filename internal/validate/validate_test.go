package validate

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestAllChecksPassOnDefaults(t *testing.T) {
	p := machine.DefaultParams()
	p.Nodes = 8 // keep the checkup quick
	rs := All(p)
	if len(rs) < 10 {
		t.Fatalf("only %d checks ran", len(rs))
	}
	for _, r := range rs {
		if !r.Pass {
			t.Errorf("check %q failed: %s", r.Name, r.Detail)
		}
	}
	if !Passed(rs) {
		t.Fatal("Passed() disagrees")
	}
}

// TestAllParallelMatchesSequential: the checkup must report the same
// results in the same canonical order however many workers run it.
func TestAllParallelMatchesSequential(t *testing.T) {
	p := machine.DefaultParams()
	p.Nodes = 4
	seq := All(p)
	par := AllParallel(p, 8)
	if len(seq) != len(par) {
		t.Fatalf("check counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("check %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}

func TestReportFormat(t *testing.T) {
	rs := []Result{
		{Name: "a", Pass: true, Detail: "fine"},
		{Name: "b", Pass: false, Detail: "broken"},
	}
	out := Report(rs)
	if !strings.Contains(out, "ok   a") || !strings.Contains(out, "FAIL b") {
		t.Fatalf("report = %q", out)
	}
	if Passed(rs) {
		t.Fatal("Passed with a failing result")
	}
}

func TestChecksDetectBrokenModel(t *testing.T) {
	// With dirty forwarding costing nothing, the 3-hop check must fail —
	// the checkup is not vacuously true.
	p := machine.DefaultParams()
	p.Nodes = 4
	p.DirtyForwardNS = 0
	r := CheckThreeHopDearer(p)
	if r.Pass {
		t.Fatalf("3-hop check passed on a degenerate model: %s", r.Detail)
	}
}

// Package validate is the simulator's self-checkup: a battery of
// programmatic checks that pin the timing model to the paper's Table 1
// figures and verify the structural invariants the experiments rely on
// (determinism, coherence, slipstream isolation, token balance). It backs
// cmd/validate and is also exercised by the test suite, so a regression in
// the model surfaces as both a failing test and a failing checkup.
package validate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/pool"
	"repro/internal/shmem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Result is one check's outcome.
type Result struct {
	Name   string
	Pass   bool
	Detail string
}

// All runs every check sequentially against the given parameters
// (typically machine.DefaultParams, possibly with a different node count).
func All(p machine.Params) []Result { return AllParallel(p, 1) }

// AllParallel runs the checks on up to jobs workers (0 = one per host
// CPU). Every check builds its own machines, so they are independent;
// results keep the canonical check order regardless of completion order.
func AllParallel(p machine.Params, jobs int) []Result {
	checks := []func(machine.Params) Result{
		CheckL1Hit,
		CheckL2Hit,
		CheckLocalMiss,
		CheckRemoteMiss,
		CheckThreeHopDearer,
		CheckUpgradeCheaperThanMiss,
		CheckContentionMonotone,
		CheckDeterminism,
		CheckBreakdownConservation,
		CheckAStreamIsolation,
		CheckTokenBalance,
		CheckCoherenceSweep,
	}
	out := make([]Result, len(checks))
	pool.ForEach(jobs, len(checks), func(i int) { out[i] = checks[i](p) })
	return out
}

// Passed reports whether every result passed.
func Passed(rs []Result) bool {
	for _, r := range rs {
		if !r.Pass {
			return false
		}
	}
	return true
}

// Report renders the results as a checkup table.
func Report(rs []Result) string {
	out := ""
	for _, r := range rs {
		mark := "ok  "
		if !r.Pass {
			mark = "FAIL"
		}
		out += fmt.Sprintf("%s %-28s %s\n", mark, r.Name, r.Detail)
	}
	return out
}

// measure runs body on proc 0 of a fresh machine and returns its duration.
func measure(p machine.Params, body func(*machine.Proc)) (sim.Time, error) {
	m := machine.New(p)
	var d sim.Time
	m.Start(0, func(pr *machine.Proc) {
		t0 := pr.Ctx.Now()
		body(pr)
		d = pr.Ctx.Now() - t0
	})
	return d, m.Run()
}

// CheckL1Hit pins the L1 hit latency.
func CheckL1Hit(p machine.Params) Result {
	d, err := measure(p, func(pr *machine.Proc) {
		pr.Load(0)
		t0 := pr.Ctx.Now()
		pr.Load(0)
		d := pr.Ctx.Now() - t0
		if d != p.L1HitCycles {
			panic(fmt.Sprintf("L1 hit %d", d))
		}
	})
	_ = d
	return verdict("L1 hit latency", err == nil, fmt.Sprintf("%d cycle(s)", p.L1HitCycles), err)
}

// CheckL2Hit pins the L2 hit latency seen by the sibling processor.
func CheckL2Hit(p machine.Params) Result {
	m := machine.New(p)
	done := false
	var d sim.Time
	m.Start(0, func(pr *machine.Proc) { pr.Load(0); done = true })
	m.Start(1, func(pr *machine.Proc) {
		pr.Ctx.SpinUntil(func() bool { return done }, 5, nil)
		t0 := pr.Ctx.Now()
		pr.Load(0)
		d = pr.Ctx.Now() - t0
	})
	err := m.Run()
	want := p.L1HitCycles + p.L2HitCycles
	return verdict("L2 hit latency", err == nil && d == want,
		fmt.Sprintf("measured %d, want %d", d, want), err)
}

// CheckLocalMiss pins the cold local-home miss to the Table 1 minimum.
func CheckLocalMiss(p machine.Params) Result {
	d, err := measure(p, func(pr *machine.Proc) { pr.Load(0) })
	want := p.L1HitCycles + p.L2HitCycles + p.Cyc(p.LocalMissNS)
	return verdict("local miss minimum", err == nil && d == want,
		fmt.Sprintf("measured %d cycles, want %d (= %d ns + hits)", d, want, p.LocalMissNS), err)
}

// CheckRemoteMiss pins the cold remote miss minimum.
func CheckRemoteMiss(p machine.Params) Result {
	d, err := measure(p, func(pr *machine.Proc) {
		pr.Load(shmem.Addr(p.LineBytes)) // home node 1
	})
	want := p.L1HitCycles + p.L2HitCycles + p.Cyc(p.RemoteMissNS)
	return verdict("remote miss minimum", err == nil && d == want,
		fmt.Sprintf("measured %d cycles, want %d (= %d ns + hits)", d, want, p.RemoteMissNS), err)
}

// CheckThreeHopDearer verifies dirty forwarding costs more than a clean
// remote fill.
func CheckThreeHopDearer(p machine.Params) Result {
	m := machine.New(p)
	phase := 0
	var clean, dirty sim.Time
	m.Start(2, func(pr *machine.Proc) { // node 1 dirties line B
		pr.Store(shmem.Addr(3 * p.LineBytes)) // home node 3, owner node 1
		phase = 1
	})
	m.Start(0, func(pr *machine.Proc) {
		pr.Ctx.SpinUntil(func() bool { return phase == 1 }, 5, nil)
		t0 := pr.Ctx.Now()
		pr.Load(shmem.Addr(2 * p.LineBytes)) // clean remote (home 2)
		clean = pr.Ctx.Now() - t0
		t0 = pr.Ctx.Now()
		pr.Load(shmem.Addr(3 * p.LineBytes)) // dirty 3-hop
		dirty = pr.Ctx.Now() - t0
	})
	err := m.Run()
	return verdict("3-hop dearer than 2-hop", err == nil && dirty > clean,
		fmt.Sprintf("clean %d, dirty %d", clean, dirty), err)
}

// CheckUpgradeCheaperThanMiss verifies ownership upgrades skip the memory
// fetch.
func CheckUpgradeCheaperThanMiss(p machine.Params) Result {
	var up, miss sim.Time
	d, err := measure(p, func(pr *machine.Proc) {
		t0 := pr.Ctx.Now()
		pr.Load(0)
		miss = pr.Ctx.Now() - t0
		t0 = pr.Ctx.Now()
		pr.Store(0)
		up = pr.Ctx.Now() - t0
	})
	_ = d
	return verdict("upgrade cheaper than miss", err == nil && up < miss && up > p.L1HitCycles,
		fmt.Sprintf("upgrade %d, miss %d", up, miss), err)
}

// CheckContentionMonotone verifies queueing at a hot home node grows
// latency relative to an uncontended run.
func CheckContentionMonotone(p machine.Params) Result {
	run := func(procs int) sim.Time {
		m := machine.New(p)
		var total sim.Time
		for g := 0; g < procs; g++ {
			g := g
			m.Start(2*g, func(pr *machine.Proc) {
				t0 := pr.Ctx.Now()
				for k := 0; k < 16; k++ {
					// All lines homed at node 0.
					pr.Load(shmem.Addr(uint64(p.LineBytes) * uint64(p.Nodes) * uint64(k+g*64)))
				}
				if pr.Node.ID == 1 {
					total = pr.Ctx.Now() - t0
				}
			})
		}
		if err := m.Run(); err != nil {
			return 0
		}
		return total
	}
	solo := run(2)
	crowd := run(p.Nodes)
	return verdict("contention monotone", solo > 0 && crowd > solo,
		fmt.Sprintf("2 requesters: %d, %d requesters: %d", solo, p.Nodes, crowd), nil)
}

// CheckDeterminism verifies identical runs produce identical wall times.
func CheckDeterminism(p machine.Params) Result {
	run := func() (uint64, error) {
		rt, err := omp.New(omp.Config{Machine: p, Mode: core.ModeSlipstream, Sched: omp.Dynamic, Chunk: 8})
		if err != nil {
			return 0, err
		}
		arr := rt.NewF64(1024)
		err = rt.Run(func(m *omp.Thread) {
			m.Parallel(func(t *omp.Thread) {
				t.For(0, 1024, func(i int) {
					t.StF(arr, i, t.LdF(arr, i)+1)
					t.Compute(3)
				})
			})
		})
		return rt.M.WallTime(), err
	}
	a, err1 := run()
	b, err2 := run()
	ok := err1 == nil && err2 == nil && a == b
	return verdict("determinism", ok, fmt.Sprintf("run1 %d, run2 %d", a, b), err1)
}

// CheckBreakdownConservation verifies every simulated cycle of an active
// processor is attributed to exactly one category.
func CheckBreakdownConservation(p machine.Params) Result {
	m := machine.New(p)
	ok := true
	detail := ""
	for g := 0; g < 2*p.Nodes; g++ {
		g := g
		m.Start(g, func(pr *machine.Proc) {
			start := pr.Ctx.Now()
			for k := 0; k < 50; k++ {
				pr.Load(shmem.Addr(uint64(g*64*p.LineBytes + k*p.LineBytes)))
				pr.Compute(7)
				pr.WithCategory(stats.CatLock, func() { pr.Wait(3) })
			}
			if got := pr.Bd.Total(); got != uint64(pr.Ctx.Now()-start) {
				ok = false
				detail = fmt.Sprintf("proc %d: breakdown %d != elapsed %d", g, got, pr.Ctx.Now()-start)
			}
		})
	}
	err := m.Run()
	if detail == "" {
		detail = "all cycles attributed"
	}
	return verdict("breakdown conservation", err == nil && ok, detail, err)
}

// CheckAStreamIsolation verifies A-stream stores never reach backing
// memory.
func CheckAStreamIsolation(p machine.Params) Result {
	rt, err := omp.New(omp.Config{Machine: p, Mode: core.ModeSlipstream})
	if err != nil {
		return verdict("A-stream isolation", false, "", err)
	}
	arr := rt.NewF64(256)
	err = rt.Run(func(m *omp.Thread) {
		m.Parallel(func(t *omp.Thread) {
			if t.IsA() {
				for i := 0; i < 256; i++ {
					t.StF(arr, i, -1)
				}
			}
			t.Compute(500)
		})
	})
	ok := err == nil
	for i := 0; i < 256 && ok; i++ {
		if arr.Get(i) != 0 {
			ok = false
		}
	}
	return verdict("A-stream isolation", ok, "speculative stores never commit", err)
}

// CheckTokenBalance verifies pairs end every program with balanced token
// counters.
func CheckTokenBalance(p machine.Params) Result {
	rt, err := omp.New(omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.L1})
	if err != nil {
		return verdict("token balance", false, "", err)
	}
	err = rt.Run(func(m *omp.Thread) {
		for r := 0; r < 2; r++ {
			m.Parallel(func(t *omp.Thread) {
				for b := 0; b < 3; b++ {
					t.Compute(100)
					t.Barrier()
				}
			})
		}
	})
	ok := err == nil
	detail := "inserted == consumed on every CMP"
	for _, nd := range rt.M.Nodes {
		if nd.Regs.ABarriers != nd.Regs.RBarriers {
			ok = false
			detail = fmt.Sprintf("node %d: A=%d R=%d", nd.ID, nd.Regs.ABarriers, nd.Regs.RBarriers)
		}
	}
	return verdict("token balance", ok, detail, err)
}

// CheckCoherenceSweep runs randomized traffic and relies on the machine's
// end-of-run directory/L2 cross-check.
func CheckCoherenceSweep(p machine.Params) Result {
	m := machine.New(p)
	for g := 0; g < 2*p.Nodes; g++ {
		g := g
		m.Start(g, func(pr *machine.Proc) {
			x := uint64(g)*2654435761 + 99
			for i := 0; i < 400; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				addr := shmem.Addr((x >> 16) % (64 * 1024))
				if x%3 == 0 {
					pr.Store(addr)
				} else {
					pr.Load(addr)
				}
			}
		})
	}
	err := m.Run()
	return verdict("coherence sweep", err == nil, "directory/L2 cross-check after random traffic", err)
}

// verdict assembles a Result, folding an error into the detail.
func verdict(name string, pass bool, detail string, err error) Result {
	if err != nil {
		pass = false
		detail = err.Error()
	}
	return Result{Name: name, Pass: pass, Detail: detail}
}

// Command slipd serves the slipstream simulator over HTTP: submit jobs
// with POST /jobs, poll GET /jobs/{id}, stream progress from
// /jobs/{id}/events, fetch rendered tables from /jobs/{id}/result, and
// scrape /metrics. Identical submissions coalesce onto one run and
// completed results are served from a content-addressed cache — the
// simulator is deterministic, so equal specs have equal results.
//
// With -data-dir (the default), every job transition is recorded in a
// write-ahead journal and every result is persisted to a disk-backed
// content-addressed store, so a crash (SIGKILL, power loss) loses no
// completed results and requeues whatever was in flight on the next
// start. Pass -no-persist for the old memory-only behaviour.
//
// Fleet mode: -coordinator turns a slipd into the fleet front door — it
// keeps the client-facing API and dispatches execution to workers that
// joined with -worker -join <coordinator-url>. Workers heartbeat their
// load; a worker that goes silent is marked suspect, then dead, and its
// in-flight jobs fail over to survivors. Stragglers are hedged with a
// second copy on another worker, first result wins — determinism and
// content addressing make every duplicate execution byte-identical.
// With zero live workers the coordinator executes jobs locally and sets
// "degraded":true on /readyz.
//
// SIGINT/SIGTERM drains gracefully: in-flight and queued jobs finish
// (up to -drain), the journal is flushed and compacted, then the
// process exits 0. See docs/api.md.
//
// Examples:
//
//	slipd -addr :8080 -workers 2 -data-dir /var/lib/slipd
//	slipd -addr :8080 -coordinator
//	slipd -addr :8081 -worker -join http://localhost:8080 -data-dir w1
//	curl -s localhost:8080/jobs -d '{"kind":"run","kernel":"CG"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 2, "concurrent jobs")
		suiteJobs   = flag.Int("suite-jobs", 0, "per-job matrix concurrency (0 = one per CPU)")
		cacheBytes  = flag.Int64("cache-bytes", 64<<20, "result cache budget in bytes (<=0 disables)")
		queueDepth  = flag.Int("queue-depth", 256, "max queued jobs before POST /jobs sheds load")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job execution wall-clock limit (0 = none)")
		drain       = flag.Duration("drain", 5*time.Minute, "graceful-shutdown deadline for in-flight jobs")
		dataDir     = flag.String("data-dir", "slipd-data", "directory for the job journal and result store")
		maxAttempts = flag.Int("max-attempts", 3, "crash-recovery retry budget per job (also bounds fleet failovers per job)")
		noPersist   = flag.Bool("no-persist", false, "disable the journal and disk result store (memory only)")

		coordinator = flag.Bool("coordinator", false, "run as fleet coordinator: dispatch jobs to joined workers")
		workerMode  = flag.Bool("worker", false, "run as fleet worker: execute jobs dispatched by a coordinator")
		join        = flag.String("join", "", "coordinator base URL a -worker registers with")
		advertise   = flag.String("advertise", "", "base URL the coordinator should dispatch to (default: derived from -addr)")
		workerID    = flag.String("worker-id", "", "stable worker identity (default: host:port of -advertise)")
		hbInterval  = flag.Duration("heartbeat-interval", time.Second, "coordinator: heartbeat cadence told to workers")
		suspectAft  = flag.Duration("suspect-after", 0, "coordinator: silence before a worker turns suspect (default 3× heartbeat)")
		deadAfter   = flag.Duration("dead-after", 0, "coordinator: silence before a worker is dead and its jobs fail over (default 10× heartbeat)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "coordinator: fixed straggler threshold for hedged dispatch (0 = p95-driven)")
	)
	flag.Parse()
	if *noPersist {
		*dataDir = ""
	}
	if *coordinator && *workerMode {
		fmt.Fprintln(os.Stderr, "slipd: -coordinator and -worker are mutually exclusive")
		os.Exit(2)
	}
	if *workerMode && *join == "" {
		fmt.Fprintln(os.Stderr, "slipd: -worker requires -join <coordinator-url>")
		os.Exit(2)
	}
	cfg := server.Config{
		CacheBytes:  *cacheBytes,
		Workers:     *workers,
		SuiteJobs:   *suiteJobs,
		QueueDepth:  *queueDepth,
		JobTimeout:  *jobTimeout,
		DataDir:     *dataDir,
		MaxAttempts: *maxAttempts,
	}
	fleet := fleetConfig{
		coordinator: *coordinator,
		worker:      *workerMode,
		join:        *join,
		advertise:   *advertise,
		workerID:    *workerID,
		heartbeat:   *hbInterval,
		suspect:     *suspectAft,
		dead:        *deadAfter,
		hedge:       *hedgeAfter,
	}
	if err := run(*addr, cfg, fleet, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "slipd:", err)
		os.Exit(1)
	}
}

// fleetConfig carries the -coordinator/-worker wiring options.
type fleetConfig struct {
	coordinator bool
	worker      bool
	join        string
	advertise   string
	workerID    string
	heartbeat   time.Duration
	suspect     time.Duration
	dead        time.Duration
	hedge       time.Duration
}

// deriveAdvertise turns a listen address like ":8081" into a URL a
// coordinator on the same host can dispatch to.
func deriveAdvertise(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

func run(addr string, cfg server.Config, fleet fleetConfig, drain time.Duration) error {
	var co *cluster.Coordinator
	if fleet.coordinator {
		co = cluster.NewCoordinator(cluster.Config{
			HeartbeatInterval: fleet.heartbeat,
			SuspectAfter:      fleet.suspect,
			DeadAfter:         fleet.dead,
			HedgeAfter:        fleet.hedge,
			MaxAttempts:       cfg.MaxAttempts,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "slipd: "+format+"\n", args...)
			},
		})
		defer co.Close()
		cfg.Cluster = co
	}

	srv, err := server.Open(cfg)
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	if co != nil {
		mux.Handle("/cluster/", co.Handler())
	}
	if fleet.worker {
		mux.Handle("/cluster/dispatch", cluster.WorkerHandler(srv))
	}
	mux.Handle("/", srv.Handler())
	httpSrv := &http.Server{Addr: addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	fmt.Fprintf(os.Stderr, "slipd: listening on %s (%d workers, %d MiB cache)\n",
		addr, cfg.Workers, cfg.CacheBytes>>20)
	if cfg.DataDir == "" {
		fmt.Fprintln(os.Stderr, "slipd: persistence disabled (memory only)")
	} else {
		recovered, requeued := srv.RecoveryStats()
		fmt.Fprintf(os.Stderr, "slipd: journal replayed from %s (%d jobs recovered, %d requeued)\n",
			cfg.DataDir, recovered, requeued)
	}
	if co != nil {
		fmt.Fprintln(os.Stderr, "slipd: coordinator mode — waiting for workers to join at /cluster/register")
	}

	var agent *cluster.Agent
	if fleet.worker {
		adv := fleet.advertise
		if adv == "" {
			adv = deriveAdvertise(addr)
		}
		id := fleet.workerID
		if id == "" {
			id = strings.TrimPrefix(strings.TrimPrefix(adv, "http://"), "https://")
		}
		agent, err = cluster.StartAgent(cluster.AgentConfig{
			Coordinator: strings.TrimRight(fleet.join, "/"),
			ID:          id,
			Advertise:   adv,
			Capacity:    cfg.Workers,
			Load:        srv.Load,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "slipd: "+format+"\n", args...)
			},
		})
		if err != nil {
			httpSrv.Close()
			return fmt.Errorf("join fleet: %w", err)
		}
		fmt.Fprintf(os.Stderr, "slipd: worker mode — joining %s as %s (advertising %s)\n", fleet.join, id, adv)
	}

	select {
	case err := <-errCh:
		if agent != nil {
			agent.Stop()
		}
		return err
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	// Leave the fleet first so the coordinator stops dispatching here
	// while we drain.
	if agent != nil {
		agent.Stop()
	}

	fmt.Fprintf(os.Stderr, "slipd: draining (deadline %s)\n", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Stop the listener first so no new jobs arrive mid-drain, then let
	// the job queue empty. A clean drain exits 0; a blown deadline
	// cancels the remaining work and reports it.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		srv.Shutdown(drainCtx)
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "slipd: drained cleanly")
	return nil
}

// Command slipd serves the slipstream simulator over HTTP: submit jobs
// with POST /jobs, poll GET /jobs/{id}, stream progress from
// /jobs/{id}/events, fetch rendered tables from /jobs/{id}/result, and
// scrape /metrics. Identical submissions coalesce onto one run and
// completed results are served from a content-addressed cache — the
// simulator is deterministic, so equal specs have equal results.
//
// With -data-dir (the default), every job transition is recorded in a
// write-ahead journal and every result is persisted to a disk-backed
// content-addressed store, so a crash (SIGKILL, power loss) loses no
// completed results and requeues whatever was in flight on the next
// start. Pass -no-persist for the old memory-only behaviour.
//
// SIGINT/SIGTERM drains gracefully: in-flight and queued jobs finish
// (up to -drain), the journal is flushed and compacted, then the
// process exits 0. See docs/api.md.
//
// Examples:
//
//	slipd -addr :8080 -workers 2 -data-dir /var/lib/slipd
//	curl -s localhost:8080/jobs -d '{"kind":"run","kernel":"CG"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 2, "concurrent jobs")
		suiteJobs   = flag.Int("suite-jobs", 0, "per-job matrix concurrency (0 = one per CPU)")
		cacheBytes  = flag.Int64("cache-bytes", 64<<20, "result cache budget in bytes (<=0 disables)")
		queueDepth  = flag.Int("queue-depth", 256, "max queued jobs before POST /jobs sheds load")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job execution wall-clock limit (0 = none)")
		drain       = flag.Duration("drain", 5*time.Minute, "graceful-shutdown deadline for in-flight jobs")
		dataDir     = flag.String("data-dir", "slipd-data", "directory for the job journal and result store")
		maxAttempts = flag.Int("max-attempts", 3, "crash-recovery retry budget per job")
		noPersist   = flag.Bool("no-persist", false, "disable the journal and disk result store (memory only)")
	)
	flag.Parse()
	if *noPersist {
		*dataDir = ""
	}
	cfg := server.Config{
		CacheBytes:  *cacheBytes,
		Workers:     *workers,
		SuiteJobs:   *suiteJobs,
		QueueDepth:  *queueDepth,
		JobTimeout:  *jobTimeout,
		DataDir:     *dataDir,
		MaxAttempts: *maxAttempts,
	}
	if err := run(*addr, cfg, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "slipd:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg server.Config, drain time.Duration) error {
	srv, err := server.Open(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	fmt.Fprintf(os.Stderr, "slipd: listening on %s (%d workers, %d MiB cache)\n",
		addr, cfg.Workers, cfg.CacheBytes>>20)
	if cfg.DataDir == "" {
		fmt.Fprintln(os.Stderr, "slipd: persistence disabled (memory only)")
	} else {
		recovered, requeued := srv.RecoveryStats()
		fmt.Fprintf(os.Stderr, "slipd: journal replayed from %s (%d jobs recovered, %d requeued)\n",
			cfg.DataDir, recovered, requeued)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintf(os.Stderr, "slipd: draining (deadline %s)\n", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Stop the listener first so no new jobs arrive mid-drain, then let
	// the job queue empty. A clean drain exits 0; a blown deadline
	// cancels the remaining work and reports it.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		srv.Shutdown(drainCtx)
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "slipd: drained cleanly")
	return nil
}

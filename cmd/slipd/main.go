// Command slipd serves the slipstream simulator over HTTP: submit jobs
// with POST /jobs, poll GET /jobs/{id}, stream progress from
// /jobs/{id}/events, fetch rendered tables from /jobs/{id}/result, and
// scrape /metrics. Identical submissions coalesce onto one run and
// completed results are served from a content-addressed cache — the
// simulator is deterministic, so equal specs have equal results.
//
// SIGINT/SIGTERM drains gracefully: in-flight and queued jobs finish
// (up to -drain), then the process exits 0. See docs/api.md.
//
// Examples:
//
//	slipd -addr :8080 -workers 2
//	curl -s localhost:8080/jobs -d '{"kind":"run","kernel":"CG"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 2, "concurrent jobs")
		suiteJobs  = flag.Int("suite-jobs", 0, "per-job matrix concurrency (0 = one per CPU)")
		cacheBytes = flag.Int64("cache-bytes", 64<<20, "result cache budget in bytes (<=0 disables)")
		queueDepth = flag.Int("queue-depth", 256, "max queued jobs before POST /jobs sheds load")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job execution wall-clock limit (0 = none)")
		drain      = flag.Duration("drain", 5*time.Minute, "graceful-shutdown deadline for in-flight jobs")
	)
	flag.Parse()
	if err := run(*addr, *workers, *suiteJobs, *cacheBytes, *queueDepth, *jobTimeout, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "slipd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, suiteJobs int, cacheBytes int64, queueDepth int, jobTimeout, drain time.Duration) error {
	srv := server.New(server.Config{
		CacheBytes: cacheBytes,
		Workers:    workers,
		SuiteJobs:  suiteJobs,
		QueueDepth: queueDepth,
		JobTimeout: jobTimeout,
	})
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	fmt.Fprintf(os.Stderr, "slipd: listening on %s (%d workers, %d MiB cache)\n",
		addr, workers, cacheBytes>>20)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintf(os.Stderr, "slipd: draining (deadline %s)\n", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Stop the listener first so no new jobs arrive mid-drain, then let
	// the job queue empty. A clean drain exits 0; a blown deadline
	// cancels the remaining work and reports it.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		srv.Shutdown(drainCtx)
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "slipd: drained cleanly")
	return nil
}

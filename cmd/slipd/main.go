// Command slipd serves the slipstream simulator over HTTP: submit jobs
// with POST /jobs, poll GET /jobs/{id}, stream progress from
// /jobs/{id}/events, fetch rendered tables from /jobs/{id}/result, and
// scrape /metrics. Identical submissions coalesce onto one run and
// completed results are served from a content-addressed cache — the
// simulator is deterministic, so equal specs have equal results.
//
// With -data-dir (the default), every job transition is recorded in a
// write-ahead journal and every result is persisted to a disk-backed
// content-addressed store, so a crash (SIGKILL, power loss) loses no
// completed results and requeues whatever was in flight on the next
// start. Pass -no-persist for the old memory-only behaviour.
//
// Fleet mode: -coordinator turns a slipd into a fleet front door — it
// keeps the client-facing API and enqueues each job in a claim table
// that workers (-worker -join <coordinator-urls>) pull from under
// leases: a worker long-polls POST /cluster/claims, renews its lease
// while running, and reports the terminal result; if the worker dies
// the lease expires and any other worker reclaims the job. Coordinators
// peered with -join-coordinator replicate the claim table to each other
// leader-lessly, so any one of them can be SIGKILLed without stranding
// work — a survivor's lease sweep reclaims in-flight jobs and serves
// the byte-identical result. Stragglers are hedged: a claim running
// past the per-label latency threshold opens to a second worker, first
// result wins. With zero live workers a coordinator executes jobs
// locally and sets "degraded":true on /readyz.
//
// SIGINT/SIGTERM drains gracefully: in-flight and queued jobs finish
// (up to -drain), held claims report before the claim loop stops, the
// journal is flushed and compacted, then the process exits 0. See
// docs/api.md.
//
// Examples:
//
//	slipd -addr :8080 -workers 2 -data-dir /var/lib/slipd
//	slipd -addr :8080 -coordinator -join-coordinator http://host2:8080
//	slipd -addr :8081 -worker -join http://host1:8080,http://host2:8080 -data-dir w1
//	curl -s localhost:8080/jobs -d '{"kind":"run","kernel":"CG"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/netchaos"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 2, "concurrent jobs")
		suiteJobs   = flag.Int("suite-jobs", 0, "per-job matrix concurrency (0 = one per CPU)")
		cacheBytes  = flag.Int64("cache-bytes", 64<<20, "result cache budget in bytes (<=0 disables)")
		queueDepth  = flag.Int("queue-depth", 256, "max queued jobs before POST /jobs sheds load")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job execution wall-clock limit (0 = none)")
		drain       = flag.Duration("drain", 5*time.Minute, "graceful-shutdown deadline for in-flight jobs")
		dataDir     = flag.String("data-dir", "slipd-data", "directory for the job journal and result store")
		maxAttempts = flag.Int("max-attempts", 3, "crash-recovery retry budget per job (also bounds claim leases per job)")
		noPersist   = flag.Bool("no-persist", false, "disable the journal and disk result store (memory only)")

		coordinator = flag.Bool("coordinator", false, "run as fleet coordinator: serve the claim table workers pull from")
		workerMode  = flag.Bool("worker", false, "run as fleet worker: claim and execute jobs from coordinators")
		join        = flag.String("join", "", "comma-separated coordinator base URLs a -worker claims from")
		joinCoord   = flag.String("join-coordinator", "", "comma-separated peer coordinator base URLs to replicate the claim table with")
		advertise   = flag.String("advertise", "", "base URL this node is reachable at (default: derived from -addr)")
		workerID    = flag.String("worker-id", "", "stable worker identity (default: host:port of -advertise)")
		hbInterval  = flag.Duration("heartbeat-interval", time.Second, "coordinator: heartbeat cadence told to workers (also the sweep and replication cadence)")
		suspectAft  = flag.Duration("suspect-after", 0, "coordinator: silence before a worker turns suspect (default 3× heartbeat)")
		deadAfter   = flag.Duration("dead-after", 0, "coordinator: silence before a worker is reported dead (default 10× heartbeat)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "coordinator: fixed straggler threshold for hedged claims (0 = p95-driven)")
		claimLease  = flag.Duration("claim-lease", 10*time.Second, "coordinator: claim lease duration; an unrenewed lease this old is reclaimed")
		claimPoll   = flag.Duration("claim-poll", 2*time.Second, "long-poll hold for POST /cluster/claims (coordinator cap and worker request)")
		brkFails    = flag.Int("breaker-failures", 0, "coordinator: consecutive replication failures before a peer's circuit breaker opens (default 5)")
		brkCooldown = flag.Duration("breaker-cooldown", 0, "coordinator: how long an open peer breaker waits before its half-open probe (default 10× heartbeat)")
		maxReplLag  = flag.Duration("max-replication-lag", 0, "coordinator: shed new jobs (503 + Retry-After) while every peer's replication lag exceeds this (0 = never shed)")
		chaosSpec   = flag.String("chaos-spec", "", "inject seeded control-plane faults on this node's outbound fleet HTTP, e.g. drop=0.05,delay=0.1:1ms:20ms,dup=0.02,reorder=0.05,skew=50ms (testing only)")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "seed for -chaos-spec; one seed fully determines the fault schedule")

		tenantWeight  = flag.Int("tenant-weight", 0, "default fair-queueing weight for tenants not named by -tenant (0 = 1)")
		tenantRate    = flag.Float64("tenant-rate", 0, "default per-tenant admission rate in jobs/sec (0 = unlimited)")
		tenantBurst   = flag.Float64("tenant-burst", 0, "default per-tenant admission burst (0 = max(rate, 1))")
		tenantBacklog = flag.Int("tenant-backlog", 0, "default per-tenant queued-job bound; overflow is refused 429 (0 = unlimited)")
	)
	var tenants []server.TenantConfig
	flag.Func("tenant", "declare a tenant as name:key[:weight[:rate[:burst[:backlog]]]] (repeatable); requests presenting the API key queue as this tenant", func(s string) error {
		tc, err := parseTenant(s)
		if err != nil {
			return err
		}
		tenants = append(tenants, tc)
		return nil
	})
	flag.Parse()
	if *noPersist {
		*dataDir = ""
	}
	if *coordinator && *workerMode {
		fmt.Fprintln(os.Stderr, "slipd: -coordinator and -worker are mutually exclusive")
		os.Exit(2)
	}
	if *workerMode && *join == "" {
		fmt.Fprintln(os.Stderr, "slipd: -worker requires -join <coordinator-urls>")
		os.Exit(2)
	}
	if *joinCoord != "" && !*coordinator {
		fmt.Fprintln(os.Stderr, "slipd: -join-coordinator requires -coordinator")
		os.Exit(2)
	}
	cfg := server.Config{
		CacheBytes:  *cacheBytes,
		Workers:     *workers,
		SuiteJobs:   *suiteJobs,
		QueueDepth:  *queueDepth,
		JobTimeout:  *jobTimeout,
		DataDir:     *dataDir,
		MaxAttempts: *maxAttempts,
		Tenants:     tenants,
		TenantDefaults: server.TenantLimits{
			Weight:  *tenantWeight,
			Rate:    *tenantRate,
			Burst:   *tenantBurst,
			Backlog: *tenantBacklog,
		},
	}
	fleet := fleetConfig{
		coordinator: *coordinator,
		worker:      *workerMode,
		join:        splitURLs(*join),
		peers:       splitURLs(*joinCoord),
		advertise:   *advertise,
		workerID:    *workerID,
		heartbeat:   *hbInterval,
		suspect:     *suspectAft,
		dead:        *deadAfter,
		hedge:       *hedgeAfter,
		lease:       *claimLease,
		poll:        *claimPoll,
		brkFails:    *brkFails,
		brkCooldown: *brkCooldown,
		maxReplLag:  *maxReplLag,
		chaosSpec:   *chaosSpec,
		chaosSeed:   *chaosSeed,
	}
	if err := run(*addr, cfg, fleet, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "slipd:", err)
		os.Exit(1)
	}
}

// fleetConfig carries the -coordinator/-worker wiring options.
type fleetConfig struct {
	coordinator bool
	worker      bool
	join        []string
	peers       []string
	advertise   string
	workerID    string
	heartbeat   time.Duration
	suspect     time.Duration
	dead        time.Duration
	hedge       time.Duration
	lease       time.Duration
	poll        time.Duration
	brkFails    int
	brkCooldown time.Duration
	maxReplLag  time.Duration
	chaosSpec   string
	chaosSeed   uint64
}

// parseTenant parses one -tenant value: name:key[:weight[:rate[:burst[:backlog]]]].
// Omitted numeric fields take the -tenant-* defaults (zero values).
func parseTenant(s string) (server.TenantConfig, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 6 {
		return server.TenantConfig{}, fmt.Errorf("tenant %q: want name:key[:weight[:rate[:burst[:backlog]]]]", s)
	}
	tc := server.TenantConfig{Name: strings.TrimSpace(parts[0]), Key: strings.TrimSpace(parts[1])}
	if tc.Name == "" {
		return server.TenantConfig{}, fmt.Errorf("tenant %q: empty name", s)
	}
	if tc.Key == "" && tc.Name != server.DefaultTenant {
		return server.TenantConfig{}, fmt.Errorf("tenant %q: empty API key (only %q may omit it)", s, server.DefaultTenant)
	}
	var err error
	if len(parts) > 2 && parts[2] != "" {
		if _, err = fmt.Sscanf(parts[2], "%d", &tc.Weight); err != nil {
			return server.TenantConfig{}, fmt.Errorf("tenant %q: bad weight %q", s, parts[2])
		}
	}
	if len(parts) > 3 && parts[3] != "" {
		if _, err = fmt.Sscanf(parts[3], "%g", &tc.Rate); err != nil {
			return server.TenantConfig{}, fmt.Errorf("tenant %q: bad rate %q", s, parts[3])
		}
	}
	if len(parts) > 4 && parts[4] != "" {
		if _, err = fmt.Sscanf(parts[4], "%g", &tc.Burst); err != nil {
			return server.TenantConfig{}, fmt.Errorf("tenant %q: bad burst %q", s, parts[4])
		}
	}
	if len(parts) > 5 && parts[5] != "" {
		if _, err = fmt.Sscanf(parts[5], "%d", &tc.Backlog); err != nil {
			return server.TenantConfig{}, fmt.Errorf("tenant %q: bad backlog %q", s, parts[5])
		}
	}
	return tc, nil
}

// splitURLs parses a comma-separated URL list, trimming blanks and
// trailing slashes.
func splitURLs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// deriveAdvertise turns a listen address like ":8081" into a URL other
// fleet members on the same host can reach.
func deriveAdvertise(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

func run(addr string, cfg server.Config, fleet fleetConfig, drain time.Duration) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "slipd: "+format+"\n", args...)
	}

	// Control-plane chaos (testing only): a seeded fault layer on this
	// node's outbound fleet HTTP — heartbeats, claims, replication — so a
	// live fleet can be drilled with reproducible network weather. The
	// data plane (client-facing /jobs) is untouched.
	var fleetHTTP *http.Client
	if fleet.chaosSpec != "" {
		spec, err := netchaos.ParseSpec(fleet.chaosSpec)
		if err != nil {
			return fmt.Errorf("parse -chaos-spec: %w", err)
		}
		spec.Seed = fleet.chaosSeed
		chaos, err := netchaos.New(spec)
		if err != nil {
			return fmt.Errorf("arm -chaos-spec: %w", err)
		}
		self := deriveAdvertise(addr)
		fleetHTTP = &http.Client{Transport: chaos.Transport(self, nil)}
		cfg.ChaosInjected = func() uint64 { return chaos.Counters().Total() }
		logf("control-plane chaos armed: %s (seed %d)", spec, fleet.chaosSeed)
	}

	var co *cluster.Coordinator
	if fleet.coordinator {
		ccfg := cluster.Config{
			HeartbeatInterval: fleet.heartbeat,
			SuspectAfter:      fleet.suspect,
			DeadAfter:         fleet.dead,
			HedgeAfter:        fleet.hedge,
			LeaseDuration:     fleet.lease,
			ClaimWait:         fleet.poll,
			MaxAttempts:       cfg.MaxAttempts,
			Peers:             fleet.peers,
			SelfID:            deriveAdvertise(addr),
			BreakerFailures:   fleet.brkFails,
			BreakerCooldown:   fleet.brkCooldown,
			MaxReplicationLag: fleet.maxReplLag,
			HTTPClient:        fleetHTTP,
			Logf:              logf,
		}
		if cfg.DataDir != "" {
			// The claim table gets its own journal beside the server's: a
			// restarted coordinator resumes its leases instead of stranding
			// in-flight claims until peers notice.
			jn, recs, err := store.Open(filepath.Join(cfg.DataDir, "claims"), 0)
			if err != nil {
				return fmt.Errorf("open claims journal: %w", err)
			}
			jn.SetLogf(logf)
			ccfg.Journal = jn
			ccfg.Replay = recs
		}
		co = cluster.NewCoordinator(ccfg)
		defer co.Close()
		cfg.Cluster = co
	}

	srv, err := server.Open(cfg)
	if err != nil {
		return err
	}
	if co != nil {
		// Settled claims land in the server's content-addressed cache, so
		// this coordinator serves GET /results/{key} for results produced
		// anywhere in the fleet — including claims it only learned about
		// through peer replication.
		co.AttachResults(srv)
	}

	mux := http.NewServeMux()
	if co != nil {
		mux.Handle("/cluster/", co.Handler())
	}
	mux.Handle("/", srv.Handler())
	httpSrv := &http.Server{Addr: addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	fmt.Fprintf(os.Stderr, "slipd: listening on %s (%d workers, %d MiB cache)\n",
		addr, cfg.Workers, cfg.CacheBytes>>20)
	if cfg.DataDir == "" {
		fmt.Fprintln(os.Stderr, "slipd: persistence disabled (memory only)")
	} else {
		recovered, requeued := srv.RecoveryStats()
		fmt.Fprintf(os.Stderr, "slipd: journal replayed from %s (%d jobs recovered, %d requeued)\n",
			cfg.DataDir, recovered, requeued)
	}
	if co != nil {
		if len(fleet.peers) > 0 {
			fmt.Fprintf(os.Stderr, "slipd: coordinator mode — replicating claims with %s\n", strings.Join(fleet.peers, ", "))
		} else {
			fmt.Fprintln(os.Stderr, "slipd: coordinator mode — waiting for workers to claim at /cluster/claims")
		}
	}

	var agents []*cluster.Agent
	var claimer *cluster.Claimer
	if fleet.worker {
		adv := fleet.advertise
		if adv == "" {
			adv = deriveAdvertise(addr)
		}
		id := fleet.workerID
		if id == "" {
			id = strings.TrimPrefix(strings.TrimPrefix(adv, "http://"), "https://")
		}
		// One membership agent per coordinator: every coordinator's
		// registry (and hedging input) sees this worker, so the fleet view
		// survives any single coordinator.
		for _, coURL := range fleet.join {
			agent, err := cluster.StartAgent(cluster.AgentConfig{
				Coordinator: coURL,
				ID:          id,
				Advertise:   adv,
				Capacity:    cfg.Workers,
				Load:        srv.Load,
				HTTPClient:  fleetHTTP,
				Logf:        logf,
			})
			if err != nil {
				for _, a := range agents {
					a.Stop()
				}
				httpSrv.Close()
				return fmt.Errorf("join fleet: %w", err)
			}
			agents = append(agents, agent)
		}
		claimer = cluster.StartClaimer(cluster.ClaimerConfig{
			Coordinators: fleet.join,
			ID:           id,
			Slots:        cfg.Workers,
			PollWait:     fleet.poll,
			KeyFor:       srv.CacheKeyFor,
			HTTPClient:   fleetHTTP,
			Run: func(ctx context.Context, spec []byte) ([]byte, error) {
				view, _, err := srv.SubmitJSON(spec)
				if err != nil {
					if errors.Is(err, server.ErrQueueFull) || errors.Is(err, server.ErrDraining) || errors.Is(err, server.ErrBackpressure) {
						// Transient local refusal: abandon without a report so
						// the lease expires instead of burning an attempt.
						return nil, fmt.Errorf("%w: %v", cluster.ErrClaimAbandoned, err)
					}
					return nil, err
				}
				return srv.Await(ctx, view.ID)
			},
			Logf: logf,
		})
		fmt.Fprintf(os.Stderr, "slipd: worker mode — claiming from %s as %s\n", strings.Join(fleet.join, ", "), id)
	}

	stopFleet := func() {
		// Claims first: Stop lets held claims finish and report, so a clean
		// shutdown leaves no lease behind to expire. Then membership.
		if claimer != nil {
			claimer.Stop()
		}
		for _, a := range agents {
			a.Stop()
		}
	}

	select {
	case err := <-errCh:
		stopFleet()
		return err
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	// Leave the fleet first so no new claims are granted to this worker
	// while it drains.
	stopFleet()

	fmt.Fprintf(os.Stderr, "slipd: draining (deadline %s)\n", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Stop the listener first so no new jobs arrive mid-drain, then let
	// the job queue empty. A clean drain exits 0; a blown deadline
	// cancels the remaining work and reports it.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		srv.Shutdown(drainCtx)
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "slipd: drained cleanly")
	return nil
}

// Command sweep runs parameter studies around the slipstream simulator:
//
//   - a fixed-problem-size scaling study across machine sizes (the paper's
//     motivating scenario: adding CMPs stops paying once communication
//     dominates, and slipstream extends the useful range),
//   - an A–R synchronization sweep over token insertion points and counts,
//     and
//   - a chaos study sweeping a deterministic fault plan across injection
//     rates, printing degradation curves with verification forced on, and
//   - a tasking study running the recursive TREE task kernel over a team
//     size × cut-off grid against its worksharing-loop baseline, in both
//     single and slipstream mode, reporting steals and speedups.
//
// Examples:
//
//	sweep -kernel MG -study scaling -nodes 2,4,8,16
//	sweep -kernel CG -study tokens -tokens 0,1,2,4
//	sweep -kernel CG -study chaos -faults 42:0,0.01,0.05,0.2
//	sweep -study tasks -nodes 2,4,8 -cutoffs 2,4,6,8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/npb"
	"repro/internal/synth"
)

func main() {
	var (
		kernel    = flag.String("kernel", "MG", "benchmark: BT|CG|LU|MG|SP")
		study     = flag.String("study", "scaling", "study to run: scaling|tokens|characterize|chaos|tasks")
		nodes     = flag.String("nodes", "2,4,8,16", "node counts for -study scaling/tasks")
		cutoffs   = flag.String("cutoffs", "2,4,6,8", "tree cut-off depths for -study tasks")
		tokens    = flag.String("tokens", "0,1,2,4", "token counts for -study tokens")
		at        = flag.Int("at", 16, "node count for -study tokens/characterize/chaos")
		scale     = flag.String("scale", "small", "problem scale: test|small|paper")
		verify    = flag.Bool("verify", true, "verify against serial references")
		jobs      = flag.Int("jobs", 0, "max concurrent simulation runs (0 = one per CPU, 1 = sequential)")
		faultSpec = flag.String("faults", "42:0,0.01,0.05,0.2", "fault sweep seed:rate,...[:classes] for -study chaos")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	sc, err := npb.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	var progress io.Writer // nil interface = silent
	if !*quiet {
		progress = os.Stderr
	}

	switch *study {
	case "scaling":
		counts, err := parseInts(*nodes, 1)
		if err != nil {
			fatal(err)
		}
		rows, err := experiments.RunScaling(strings.ToUpper(*kernel), counts, sc, *jobs, *verify, progress)
		if err != nil {
			fatal(err)
		}
		experiments.PrintScaling(strings.ToUpper(*kernel), rows, os.Stdout)
	case "tokens":
		counts, err := parseInts(*tokens, 0)
		if err != nil {
			fatal(err)
		}
		rows, err := experiments.RunTokenSweep(strings.ToUpper(*kernel), *at, sc, counts, *jobs, *verify, progress)
		if err != nil {
			fatal(err)
		}
		experiments.PrintTokenSweep(strings.ToUpper(*kernel), rows, os.Stdout)
	case "characterize":
		rows, err := experiments.Characterize(*at, synth.DefaultParams(), *jobs, progress)
		if err != nil {
			fatal(err)
		}
		experiments.PrintCharacterization(rows, os.Stdout)
	case "chaos":
		plan, rates, err := faults.ParseSweep(*faultSpec)
		if err != nil {
			fatal(err)
		}
		o := experiments.Options{
			Nodes:   *at,
			Scale:   sc,
			Kernels: []string{strings.ToUpper(*kernel)},
			Jobs:    *jobs,
		}
		suite, err := experiments.RunChaos(o, plan, rates, progress)
		if err != nil {
			fatal(err)
		}
		suite.Curves(os.Stdout)
		// The curves name the failing cells; the exit code must still say
		// the invariant broke.
		if err := suite.Err(); err != nil {
			fatal(err)
		}
	case "tasks":
		teams, err := parseInts(*nodes, 1)
		if err != nil {
			fatal(err)
		}
		cuts, err := parseInts(*cutoffs, 0)
		if err != nil {
			fatal(err)
		}
		o := experiments.Options{Scale: sc, Jobs: *jobs}
		suite, err := experiments.RunTasks(o, teams, cuts, progress)
		if err != nil {
			fatal(err)
		}
		suite.Table(os.Stdout)
		if err := suite.Err(); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown study %q (valid: scaling|tokens|characterize|chaos|tasks)", *study))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

// parseInts parses a comma-separated count list, distinguishing the three
// rejection cases (not a number, below the study's minimum, duplicate) so
// the user learns which value is wrong and why.
func parseInts(s string, min int) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		p := strings.TrimSpace(part)
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("count %q is not a number", p)
		}
		if n < min {
			return nil, fmt.Errorf("count %d is below the minimum %d", n, min)
		}
		if seen[n] {
			return nil, fmt.Errorf("duplicate count %d", n)
		}
		seen[n] = true
		out = append(out, n)
	}
	return out, nil
}

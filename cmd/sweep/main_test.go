package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseIntsValid(t *testing.T) {
	got, err := parseInts(" 2, 4 ,8,16", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 4, 8, 16}) {
		t.Fatalf("parsed %v", got)
	}
}

func TestParseIntsRejections(t *testing.T) {
	cases := []struct {
		in   string
		min  int
		want string // distinguishing fragment of the error
	}{
		{"2,x,8", 1, "not a number"},
		{"2,,8", 1, "not a number"},
		{"2,0,8", 1, "below the minimum"},
		{"-1", 0, "below the minimum"},
		{"2,4,2", 1, "duplicate count 2"},
	}
	for _, c := range cases {
		_, err := parseInts(c.in, c.min)
		if err == nil {
			t.Fatalf("parseInts(%q, %d) accepted", c.in, c.min)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("parseInts(%q, %d) = %v, want error mentioning %q", c.in, c.min, err, c.want)
		}
	}
}

// Command validate runs the simulator's self-checkup: it pins the timing
// model to the paper's Table 1 figures (L1/L2 hit, 170 ns local / 290 ns
// remote miss minima, 3-hop forwarding, upgrade costs), exercises
// contention monotonicity, and verifies the structural invariants the
// experiments depend on (determinism, cycle-accounting conservation,
// A-stream isolation, token balance, directory coherence).
//
//	validate [-nodes N]
//
// Exit status is non-zero if any check fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/validate"
)

func main() {
	nodes := flag.Int("nodes", 16, "number of dual-processor CMP nodes")
	mesh := flag.Bool("mesh", false, "validate under the 2-D mesh topology")
	jobs := flag.Int("jobs", 0, "max concurrent checks (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	p := machine.DefaultParams()
	p.Nodes = *nodes
	if *mesh {
		p.Topology = machine.TopoMesh2D
	}
	fmt.Printf("model checkup: %d CMPs, %s interconnect\n", p.Nodes, p.Topology)
	rs := validate.AllParallel(p, *jobs)
	fmt.Print(validate.Report(rs))
	if !validate.Passed(rs) {
		os.Exit(1)
	}
	fmt.Println("all checks passed")
}

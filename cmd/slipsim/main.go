// Command slipsim runs the slipstream-OpenMP simulator: individual
// benchmark runs under any execution mode, or the paper's full experiments
// (Figures 2–5, Tables 1–2).
//
// Examples:
//
//	slipsim -experiment all                 # regenerate every table/figure
//	slipsim -experiment fig2 -scale paper   # static-scheduling figure
//	slipsim -kernel CG -mode slipstream -sync LOCAL_SYNC -tokens 1
//	slipsim -kernel MG -mode slipstream -env GLOBAL_SYNC,0
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/omp"
	"repro/internal/synth"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to run: fig2|fig3|fig4|fig5|table1|table2|all")
		kernel     = flag.String("kernel", "", "single benchmark to run: BT|CG|LU|MG|SP (or extensions EP|FT|IS)")
		workload   = flag.String("workload", "", "synthetic workload to run: stream|exchange|gather|migrate|lockstep|taskfarm")
		mode       = flag.String("mode", "slipstream", "execution mode: single|double|slipstream")
		sync       = flag.String("sync", "GLOBAL_SYNC", "A-R synchronization: GLOBAL_SYNC|LOCAL_SYNC|NONE")
		tokens     = flag.Int("tokens", 0, "initial token count")
		env        = flag.String("env", "", "OMP_SLIPSTREAM value (overrides -sync/-tokens)")
		sched      = flag.String("sched", "static", "loop schedule: static|dynamic|guided")
		chunk      = flag.Int("chunk", 0, "dynamic/guided chunk size (0 = benchmark default)")
		nodes      = flag.Int("nodes", 16, "number of dual-processor CMP nodes")
		scale      = flag.String("scale", "paper", "problem scale: test|small|paper")
		selfinv    = flag.Bool("selfinv", false, "enable A-stream self-invalidation hints")
		verify     = flag.Bool("verify", true, "verify results against the serial reference")
		kernels    = flag.String("kernels", "", "comma-separated kernel filter for experiments")
		traceN     = flag.Int("trace", 0, "dump the last N simulation events after a single run")
		csvPath    = flag.String("csv", "", "also write experiment results to a CSV file")
		jsonOut    = flag.Bool("json", false, "print a JSON snapshot after a single run")
		topology   = flag.String("topology", "fixed", "interconnect: fixed|mesh")
		jobs       = flag.Int("jobs", 0, "max concurrent simulation runs (0 = one per CPU, 1 = sequential)")
		faultSpec  = flag.String("faults", "", "deterministic fault plan seed:rate[:classes] for -kernel/-workload runs")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	var faultPlan *faults.Config
	if *faultSpec != "" {
		fc, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		faultPlan = &fc
	}

	sc, err := npb.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	opts := experiments.DefaultOptions()
	opts.Nodes = *nodes
	opts.Scale = sc
	opts.SelfInvalidate = *selfinv
	opts.Verify = *verify
	opts.Jobs = *jobs
	if *kernels != "" {
		opts.Kernels = strings.Split(*kernels, ",")
	}

	switch {
	case *experiment != "":
		if faultPlan != nil {
			fatal(errors.New("-faults applies to -kernel/-workload runs; use sweep -study chaos for fault-rate sweeps"))
		}
		if err := runExperiment(*experiment, opts, *csvPath, *quiet); err != nil {
			fatal(err)
		}
	case *kernel != "":
		if err := runSingle(*kernel, *mode, *sync, *tokens, *env, *sched, *chunk, *traceN, *topology, *jsonOut, faultPlan, opts); err != nil {
			fatal(err)
		}
	case *workload != "":
		if err := runWorkload(*workload, *mode, *sync, *tokens, *sched, *chunk, faultPlan, opts); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slipsim:", err)
	os.Exit(1)
}

func runExperiment(name string, opts experiments.Options, csvPath string, quiet bool) error {
	out := os.Stdout
	var progress io.Writer // nil interface = silent
	if !quiet {
		progress = os.Stderr
	}
	needStatic := false
	needDynamic := false
	switch name {
	case "fig2", "fig3":
		needStatic = true
	case "fig4", "fig5":
		needDynamic = true
	case "table1":
		experiments.Table1(opts, out)
		return nil
	case "table2":
		return experiments.Table2(opts, out)
	case "all":
		needStatic, needDynamic = true, true
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}

	var static, dynamic *experiments.Suite
	var err error
	if needStatic {
		if static, err = experiments.RunStatic(opts, progress); err != nil {
			return err
		}
	}
	if needDynamic {
		if dynamic, err = experiments.RunDynamic(opts, progress); err != nil {
			return err
		}
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if static != nil {
			if err := static.WriteCSV(f); err != nil {
				return err
			}
		}
		if dynamic != nil {
			if err := dynamic.WriteCSV(f); err != nil {
				return err
			}
		}
	}
	switch name {
	case "fig2":
		static.Fig2(out)
	case "fig3":
		static.Fig3(out)
	case "fig4":
		dynamic.Fig4(out)
	case "fig5":
		dynamic.Fig5(out)
	case "all":
		experiments.Table1(opts, out)
		fmt.Fprintln(out)
		if err := experiments.Table2(opts, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		static.Fig2(out)
		static.Fig3(out)
		dynamic.Fig4(out)
		dynamic.Fig5(out)
	}
	// Failed cells don't abort the suite — the surviving cells rendered
	// above — but they must not pass silently either: name each one and
	// exit non-zero.
	var failed []experiments.CellError
	if static != nil {
		failed = append(failed, static.Errors...)
	}
	if dynamic != nil {
		failed = append(failed, dynamic.Errors...)
	}
	if len(failed) > 0 {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d run(s) failed:", len(failed))
		for _, e := range failed {
			fmt.Fprintf(&sb, "\n  %s", e.Error())
		}
		return errors.New(sb.String())
	}
	return nil
}

func runSingle(kernel, mode, sync string, tokens int, env, sched string, chunk, traceN int, topology string, jsonOut bool, faultPlan *faults.Config, opts experiments.Options) error {
	k, err := npb.ByName(strings.ToUpper(kernel))
	if err != nil {
		return err
	}
	p := machine.DefaultParams()
	p.Nodes = opts.Nodes
	p.TraceCap = traceN
	switch strings.ToLower(topology) {
	case "fixed":
	case "mesh":
		p.Topology = machine.TopoMesh2D
	default:
		return fmt.Errorf("unknown topology %q", topology)
	}

	cfg := omp.Config{Machine: p, Env: env, SelfInvalidate: opts.SelfInvalidate, Faults: faultPlan}
	if cfg.Mode, err = experiments.ParseMode(mode); err != nil {
		return err
	}
	if cfg.Slipstream, err = experiments.ParseSync(sync, tokens); err != nil {
		return err
	}
	if cfg.Sched, err = experiments.ParseSched(sched); err != nil {
		return err
	}
	cfg.Chunk = chunk
	if chunk == 0 && cfg.Sched != omp.Static {
		cfg.Chunk = k.ChunkFor(opts.Scale, p.Nodes)
	}

	name := fmt.Sprintf("%s/%s/%s", mode, sched, cfg.Slipstream)
	rt, err := omp.New(cfg)
	if err != nil {
		return err
	}
	inst := k.Build(rt, opts.Scale)
	if err := rt.Run(inst.Program); err != nil {
		return err
	}
	if opts.Verify {
		if err := inst.Verify(); err != nil {
			return fmt.Errorf("verification: %w", err)
		}
	}
	r := experiments.Result{
		Kernel:     k.Name,
		Config:     name,
		Size:       inst.Size,
		Wall:       rt.M.WallTime(),
		Breakdown:  rt.M.TotalBreakdown(),
		Class:      rt.M.Class,
		Recoveries: rt.SS.Recoveries(),
	}
	fmt.Printf("%s %s\n", r.Kernel, r.Size)
	fmt.Printf("config:     %s\n", r.Config)
	if inst.Norm != nil {
		fmt.Printf("result norm: %.10e\n", inst.Norm())
	}
	fmt.Printf("cycles:     %d (%.3f ms simulated at %.1f GHz)\n",
		r.Wall, float64(r.Wall)/(p.ClockGHz*1e6), p.ClockGHz)
	fmt.Printf("breakdown:  %s\n", r.Breakdown.String())
	if faultPlan != nil {
		fmt.Printf("faults:     %d injected (%s)\n", rt.FaultsInjected(), rt.Faults().Summary())
	}
	if cfg.Mode == core.ModeSlipstream {
		fmt.Printf("recoveries: %d\nshared-request classification:\n%s\n", r.Recoveries, r.Class.String())
	}
	if opts.Verify {
		fmt.Println("verification: PASSED (matches serial reference)")
	}
	fmt.Printf("protocol:   %s\n", rt.M.Proto.String())
	if jsonOut {
		if err := rt.M.TakeSnapshot(true).WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	if traceN > 0 {
		if err := rt.M.Trace.Dump(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// runWorkload executes a synthetic workload in one configuration.
func runWorkload(name, mode, sync string, tokens int, sched string, chunk int, faultPlan *faults.Config, opts experiments.Options) error {
	p := machine.DefaultParams()
	p.Nodes = opts.Nodes
	cfg := omp.Config{Machine: p, Chunk: chunk, Faults: faultPlan}
	var err error
	if cfg.Mode, err = experiments.ParseMode(mode); err != nil {
		return err
	}
	if cfg.Slipstream, err = experiments.ParseSync(sync, tokens); err != nil {
		return err
	}
	if cfg.Sched, err = experiments.ParseSched(sched); err != nil {
		return err
	}
	rt, err := omp.New(cfg)
	if err != nil {
		return err
	}
	w, err := synth.Build(name, rt, synth.DefaultParams())
	if err != nil {
		return err
	}
	if err := rt.Run(w.Program); err != nil {
		return err
	}
	if opts.Verify {
		if err := w.Verify(); err != nil {
			return fmt.Errorf("verification: %w", err)
		}
	}
	bd := rt.M.TotalBreakdown()
	fmt.Printf("%s: %s\n", w.Name, w.Desc)
	fmt.Printf("cycles:     %d\n", rt.M.WallTime())
	fmt.Printf("breakdown:  %s\n", bd.String())
	if faultPlan != nil {
		fmt.Printf("faults:     %d injected (%s)\n", rt.FaultsInjected(), rt.Faults().Summary())
	}
	if cfg.Mode == core.ModeSlipstream {
		fmt.Printf("classification:\n%s\n", rt.M.Class.String())
	}
	if opts.Verify {
		fmt.Println("verification: PASSED")
	}
	return nil
}

// Command smoke is the end-to-end check behind `make smoke`: it starts a
// real slipd process, submits a CG scaling job over HTTP, asserts the
// rendered speedup table comes back with a 200, cancels a running suite
// job with DELETE and asserts it settles as failed, then sends SIGTERM
// and asserts the daemon drains and exits 0.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

func main() {
	bin := "bin/slipd"
	if len(os.Args) > 1 {
		bin = os.Args[1]
	}
	if err := run(bin); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: PASSED")
}

func run(bin string) error {
	// Grab a free port; the tiny window between closing the probe
	// listener and slipd binding it is acceptable for a smoke test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(bin, "-addr", addr, "-workers", "1", "-drain", "2m")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", bin, err)
	}
	defer cmd.Process.Kill()
	base := "http://" + addr

	if err := waitHealthy(base, 10*time.Second); err != nil {
		return err
	}

	// One CG fixed-size scaling study at test scale: small enough to run
	// in seconds, and its result is a real speedup table.
	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"kind":"scaling","kernel":"CG","node_counts":[2,4],"scale":"test"}`))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("POST /jobs = %d: %s", resp.StatusCode, body)
	}
	var sr struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		return fmt.Errorf("decode submit response: %w (%s)", err, body)
	}

	if err := waitDone(base, sr.Job.ID, 2*time.Minute); err != nil {
		return err
	}

	result, code, err := get(base + "/jobs/" + sr.Job.ID + "/result")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("GET result = %d, want 200: %s", code, result)
	}
	for _, want := range []string{"Fixed-size scaling, CG", "speedup"} {
		if !strings.Contains(result, want) {
			return fmt.Errorf("result missing %q:\n%s", want, result)
		}
	}
	fmt.Fprintf(os.Stderr, "smoke: got speedup table:\n%s", result)

	metrics, _, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(metrics, "slipd_runs_total 1") {
		return fmt.Errorf("metrics missing slipd_runs_total 1:\n%s", metrics)
	}

	// Cancellation: DELETE a running job and assert it settles as failed
	// without wedging the worker or the later drain. A small-scale suite
	// is slow enough to still be running when the DELETE lands.
	resp, err = http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"kind":"static","kernels":["CG"],"nodes":8,"scale":"small"}`))
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("POST suite job = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		return fmt.Errorf("decode suite submit response: %w (%s)", err, body)
	}
	if err := waitState(base, sr.Job.ID, "running", 30*time.Second); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+sr.Job.ID, nil)
	if err != nil {
		return err
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		return fmt.Errorf("DELETE running job = %d, want 200", dresp.StatusCode)
	}
	state, errMsg, err := waitTerminal(base, sr.Job.ID, 2*time.Minute)
	if err != nil {
		return err
	}
	if state != "failed" || !strings.Contains(errMsg, "cancel") {
		return fmt.Errorf("cancelled job settled as %q (error %q), want failed/cancelled", state, errMsg)
	}
	fmt.Fprintln(os.Stderr, "smoke: cancelled running job settled as failed")

	// Graceful termination: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("slipd exited non-zero after SIGTERM: %w", err)
		}
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("slipd did not exit within 2m of SIGTERM")
	}
	return nil
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, code, err := get(base + "/healthz"); err == nil && code == http.StatusOK {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("slipd not healthy within %s", timeout)
}

func waitDone(base, id string, timeout time.Duration) error {
	state, errMsg, err := waitTerminal(base, id, timeout)
	if err != nil {
		return err
	}
	if state != "done" {
		return fmt.Errorf("job failed: %s", errMsg)
	}
	return nil
}

// waitState polls until the job reaches the wanted (possibly transient)
// state. A job that skips past it to a terminal state is an error.
func waitState(base, id, want string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		state, errMsg, err := jobState(base, id)
		if err != nil {
			return err
		}
		if state == want {
			return nil
		}
		if state == "done" || state == "failed" {
			return fmt.Errorf("job %s reached %q (error %q) before %q", id, state, errMsg, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("job %s not %s within %s", id, want, timeout)
}

// waitTerminal polls until the job settles, returning its final state.
func waitTerminal(base, id string, timeout time.Duration) (state, errMsg string, err error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		state, errMsg, err = jobState(base, id)
		if err != nil {
			return "", "", err
		}
		if state == "done" || state == "failed" {
			return state, errMsg, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return "", "", fmt.Errorf("job %s not terminal within %s", id, timeout)
}

func jobState(base, id string) (state, errMsg string, err error) {
	body, code, err := get(base + "/jobs/" + id)
	if err != nil {
		return "", "", err
	}
	if code != http.StatusOK {
		return "", "", fmt.Errorf("GET /jobs/%s = %d: %s", id, code, body)
	}
	var v struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		return "", "", err
	}
	return v.State, v.Error, nil
}

func get(url string) (string, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	return string(b), resp.StatusCode, nil
}

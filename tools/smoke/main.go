// Command smoke is the end-to-end check behind `make smoke`. Phase one
// starts a memory-only slipd, submits a CG scaling job over HTTP,
// asserts the rendered speedup table comes back with a 200, cancels a
// running suite job with DELETE and asserts it settles as failed, then
// sends SIGTERM and asserts the daemon drains and exits 0. Phase two is
// the crash-recovery drill: a persistent slipd is SIGKILLed mid-job,
// restarted on the same -data-dir, and must requeue the interrupted job
// (producing byte-identical output to an uninterrupted run), serve the
// already-done job from disk without re-executing it, and — after a
// clean SIGTERM — restart with zero requeues.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

// fastSpec finishes in seconds; slowSpec runs long enough that a signal
// reliably lands while it is still executing.
const (
	fastSpec = `{"kind":"scaling","kernel":"CG","node_counts":[2,4],"scale":"test"}`
	slowSpec = `{"kind":"static","kernels":["CG"],"nodes":8,"scale":"small"}`
)

func main() {
	bin := "bin/slipd"
	if len(os.Args) > 1 {
		bin = os.Args[1]
	}
	if err := run(bin); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAILED:", err)
		os.Exit(1)
	}
	if err := crashRecovery(bin); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: PASSED")
}

func run(bin string) error {
	cmd, base, err := startSlipd(bin, "-no-persist")
	if err != nil {
		return err
	}
	defer cmd.Process.Kill()

	if err := waitHealthy(base, 10*time.Second); err != nil {
		return err
	}

	// One CG fixed-size scaling study at test scale: small enough to run
	// in seconds, and its result is a real speedup table.
	id, _, _, err := submit(base, fastSpec)
	if err != nil {
		return err
	}
	if err := waitDone(base, id, 2*time.Minute); err != nil {
		return err
	}

	result, code, err := get(base + "/jobs/" + id + "/result")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("GET result = %d, want 200: %s", code, result)
	}
	for _, want := range []string{"Fixed-size scaling, CG", "speedup"} {
		if !strings.Contains(result, want) {
			return fmt.Errorf("result missing %q:\n%s", want, result)
		}
	}
	fmt.Fprintf(os.Stderr, "smoke: got speedup table:\n%s", result)

	metrics, _, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(metrics, "slipd_runs_total 1") {
		return fmt.Errorf("metrics missing slipd_runs_total 1:\n%s", metrics)
	}

	// Cancellation: DELETE a running job and assert it settles as failed
	// without wedging the worker or the later drain. A small-scale suite
	// is slow enough to still be running when the DELETE lands.
	id, _, _, err = submit(base, slowSpec)
	if err != nil {
		return err
	}
	if err := waitState(base, id, "running", 30*time.Second); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
	if err != nil {
		return err
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		return fmt.Errorf("DELETE running job = %d, want 200", dresp.StatusCode)
	}
	v, err := waitTerminal(base, id, 2*time.Minute)
	if err != nil {
		return err
	}
	if v.State != "failed" || !strings.Contains(v.Error, "cancel") {
		return fmt.Errorf("cancelled job settled as %q (error %q), want failed/cancelled", v.State, v.Error)
	}
	fmt.Fprintln(os.Stderr, "smoke: cancelled running job settled as failed")

	return stopGracefully(cmd)
}

// crashRecovery is the durability drill: SIGKILL a persistent slipd
// mid-job and assert the restart recovers everything the journal
// promised.
func crashRecovery(bin string) error {
	// Reference bytes from an uninterrupted run on a throwaway
	// memory-only instance: the recovered run must match these exactly.
	ref, err := referenceRun(bin)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	dataDir, err := os.MkdirTemp("", "slipd-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	// Instance A: complete one fast job, then get SIGKILLed while the
	// slow one is running.
	cmdA, baseA, err := startSlipd(bin, "-data-dir", dataDir)
	if err != nil {
		return err
	}
	defer cmdA.Process.Kill()
	if err := waitReady(baseA, 10*time.Second); err != nil {
		return err
	}
	fastID, fastKey, _, err := submit(baseA, fastSpec)
	if err != nil {
		return err
	}
	if err := waitDone(baseA, fastID, 2*time.Minute); err != nil {
		return err
	}
	fastRef, code, err := get(baseA + "/jobs/" + fastID + "/result")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("GET fast result = %d", code)
	}
	slowID, _, _, err := submit(baseA, slowSpec)
	if err != nil {
		return err
	}
	if err := waitState(baseA, slowID, "running", 30*time.Second); err != nil {
		return err
	}
	if err := cmdA.Process.Kill(); err != nil { // SIGKILL: no drain, no flush
		return err
	}
	cmdA.Wait()
	fmt.Fprintf(os.Stderr, "smoke: SIGKILLed slipd while %s was running\n", slowID)

	// Instance B: same data dir. Replay must requeue the interrupted job
	// under the same id and finish it with the reference bytes, and must
	// serve the fast job's result from disk without re-executing it.
	cmdB, baseB, err := startSlipd(bin, "-data-dir", dataDir)
	if err != nil {
		return err
	}
	defer cmdB.Process.Kill()
	if err := waitReady(baseB, 10*time.Second); err != nil {
		return err
	}
	v, err := jobView(baseB, slowID)
	if err != nil {
		return fmt.Errorf("interrupted job after restart: %w", err)
	}
	if !v.Restored || v.Attempts != 2 {
		return fmt.Errorf("interrupted job = restored=%v attempts=%d, want restored attempts=2", v.Restored, v.Attempts)
	}
	if err := waitDone(baseB, slowID, 3*time.Minute); err != nil {
		return fmt.Errorf("requeued job: %w", err)
	}
	recovered, code, err := get(baseB + "/jobs/" + slowID + "/result")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("GET recovered result = %d", code)
	}
	if recovered != ref {
		return fmt.Errorf("recovered run differs from uninterrupted run:\n--- recovered ---\n%s--- reference ---\n%s", recovered, ref)
	}
	fmt.Fprintln(os.Stderr, "smoke: requeued job produced byte-identical output")

	_, _, cached, err := submit(baseB, fastSpec)
	if err != nil {
		return err
	}
	if !cached {
		return fmt.Errorf("resubmitted fast spec was not served from the result store")
	}
	byKey, code, err := get(baseB + "/results/" + fastKey)
	if err != nil {
		return err
	}
	if code != http.StatusOK || byKey != fastRef {
		return fmt.Errorf("GET /results/%s = %d, bytes match=%v", fastKey, code, byKey == fastRef)
	}
	metrics, _, err := get(baseB + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"slipd_jobs_requeued_total 1",
		"slipd_jobs_recovered_total 1",
		"slipd_runs_total 1", // only the requeued job ran; the fast one came off disk
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("metrics missing %q after recovery:\n%s", want, metrics)
		}
	}
	fmt.Fprintln(os.Stderr, "smoke: done job served from disk, recovery metrics correct")
	if err := stopGracefully(cmdB); err != nil {
		return err
	}

	// Instance C: after a clean SIGTERM drain the journal holds only
	// terminal records, so this restart must recover everything and
	// requeue nothing.
	cmdC, baseC, err := startSlipd(bin, "-data-dir", dataDir)
	if err != nil {
		return err
	}
	defer cmdC.Process.Kill()
	if err := waitReady(baseC, 10*time.Second); err != nil {
		return err
	}
	metrics, _, err = get(baseC + "/metrics")
	if err != nil {
		return err
	}
	// Three terminal jobs in the journal: the fast run, the recovered
	// slow run, and the cached resubmission from instance B.
	if !strings.Contains(metrics, "slipd_jobs_requeued_total 0") ||
		!strings.Contains(metrics, "slipd_jobs_recovered_total 3") {
		return fmt.Errorf("clean restart requeued work:\n%s", metrics)
	}
	fmt.Fprintln(os.Stderr, "smoke: clean restart recovered 3 jobs, requeued 0")
	return stopGracefully(cmdC)
}

// referenceRun executes slowSpec to completion on a memory-only
// instance and returns the rendered result.
func referenceRun(bin string) (string, error) {
	cmd, base, err := startSlipd(bin, "-no-persist")
	if err != nil {
		return "", err
	}
	defer cmd.Process.Kill()
	if err := waitHealthy(base, 10*time.Second); err != nil {
		return "", err
	}
	id, _, _, err := submit(base, slowSpec)
	if err != nil {
		return "", err
	}
	if err := waitDone(base, id, 3*time.Minute); err != nil {
		return "", err
	}
	result, code, err := get(base + "/jobs/" + id + "/result")
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("GET result = %d", code)
	}
	return result, stopGracefully(cmd)
}

// startSlipd launches the daemon on a free port and returns the running
// process plus its base URL.
func startSlipd(bin string, extra ...string) (*exec.Cmd, string, error) {
	// Grab a free port; the tiny window between closing the probe
	// listener and slipd binding it is acceptable for a smoke test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	addr := l.Addr().String()
	l.Close()

	args := append([]string{"-addr", addr, "-workers", "1", "-drain", "2m"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("start %s: %w", bin, err)
	}
	return cmd, "http://" + addr, nil
}

// stopGracefully SIGTERMs the daemon and requires a clean drain.
func stopGracefully(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("slipd exited non-zero after SIGTERM: %w", err)
		}
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("slipd did not exit within 2m of SIGTERM")
	}
	return nil
}

// submit POSTs a spec and returns the new job's id, cache key, and
// whether it was served from the result cache.
func submit(base, spec string) (id, key string, cached bool, err error) {
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return "", "", false, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", "", false, fmt.Errorf("POST /jobs = %d: %s", resp.StatusCode, body)
	}
	var sr struct {
		Job struct {
			ID  string `json:"id"`
			Key string `json:"key"`
		} `json:"job"`
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		return "", "", false, fmt.Errorf("decode submit response: %w (%s)", err, body)
	}
	return sr.Job.ID, sr.Job.Key, sr.Cached, nil
}

func waitHealthy(base string, timeout time.Duration) error {
	return waitProbe(base+"/healthz", timeout)
}

// waitReady polls /readyz, which only turns 200 after journal replay.
func waitReady(base string, timeout time.Duration) error {
	return waitProbe(base+"/readyz", timeout)
}

func waitProbe(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, code, err := get(url); err == nil && code == http.StatusOK {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s not 200 within %s", url, timeout)
}

func waitDone(base, id string, timeout time.Duration) error {
	v, err := waitTerminal(base, id, timeout)
	if err != nil {
		return err
	}
	if v.State != "done" {
		return fmt.Errorf("job failed: %s", v.Error)
	}
	return nil
}

// waitState polls until the job reaches the wanted (possibly transient)
// state. A job that skips past it to a terminal state is an error.
func waitState(base, id, want string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v, err := jobView(base, id)
		if err != nil {
			return err
		}
		if v.State == want {
			return nil
		}
		if v.State == "done" || v.State == "failed" {
			return fmt.Errorf("job %s reached %q (error %q) before %q", id, v.State, v.Error, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("job %s not %s within %s", id, want, timeout)
}

// waitTerminal polls until the job settles, returning its final view.
func waitTerminal(base, id string, timeout time.Duration) (view, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v, err := jobView(base, id)
		if err != nil {
			return view{}, err
		}
		if v.State == "done" || v.State == "failed" {
			return v, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return view{}, fmt.Errorf("job %s not terminal within %s", id, timeout)
}

type view struct {
	State    string `json:"state"`
	Error    string `json:"error"`
	Attempts int    `json:"attempts"`
	Restored bool   `json:"restored"`
}

func jobView(base, id string) (view, error) {
	body, code, err := get(base + "/jobs/" + id)
	if err != nil {
		return view{}, err
	}
	if code != http.StatusOK {
		return view{}, fmt.Errorf("GET /jobs/%s = %d: %s", id, code, body)
	}
	var v view
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		return view{}, err
	}
	return v, nil
}

func get(url string) (string, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	return string(b), resp.StatusCode, nil
}

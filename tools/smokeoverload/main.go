// Command smokeoverload is the multi-tenant overload drill behind
// `make smoke-overload`. It boots a slipd with a rate-limited flood
// tenant and an unlimited probe tenant, then asserts the admission and
// fairness contract end to end over real HTTP:
//
//  1. The flood tenant bursts past its token bucket and is refused with
//     429 + Retry-After while the daemon stays healthy.
//  2. The probe tenant's interactive job completes while the flood
//     tenant's backlog is still queued — no cross-tenant starvation.
//  3. The probe result is byte-identical to the same spec run on a
//     second, completely unloaded slipd: overload must shape *when*
//     work runs, never *what* it produces.
//  4. A halt-policy campaign whose first cell is cancelled mid-run
//     deterministically skips its pending cell and settles failed, and
//     the per-tenant and campaign counters land on /metrics.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

const (
	floodKey = "sk-flood"
	probeKey = "sk-probe"

	probeSpec = `{"kind":"run","kernel":"CG","nodes":4}`
	// slowCell runs long enough that a DELETE reliably lands mid-run.
	slowCell = `{"kind":"static","kernels":["CG"],"nodes":8,"scale":"small"}`
)

func main() {
	bin := "bin/slipd"
	if len(os.Args) > 1 {
		bin = os.Args[1]
	}
	if err := run(bin); err != nil {
		fmt.Fprintln(os.Stderr, "smoke-overload: FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("smoke-overload: PASSED")
}

func run(bin string) error {
	// Flood tenant: weight 1, 0.5 jobs/sec, burst 2, backlog 8. Probe
	// tenant: unlimited. Both admission domains on one worker, so
	// fairness is decided purely by the scheduler.
	cmd, base, err := startSlipd(bin, "-no-persist",
		"-tenant", "flood:"+floodKey+":1:0.5:2:8",
		"-tenant", "probe:"+probeKey)
	if err != nil {
		return err
	}
	defer cmd.Process.Kill()
	if err := waitHealthy(base, 10*time.Second); err != nil {
		return err
	}

	// Phase 1: burst the flood tenant. Two submissions fit the burst;
	// the rest must come back 429 with a Retry-After hint, not 503 and
	// not success.
	admitted, refused := 0, 0
	for i := 0; i < 8; i++ {
		spec := fmt.Sprintf(`{"kind":"run","kernel":"CG","nodes":%d,"priority":"batch"}`, 8+i)
		resp, body, err := post(base+"/jobs", floodKey, spec)
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusCreated:
			admitted++
		case http.StatusTooManyRequests:
			refused++
			if resp.Header.Get("Retry-After") == "" {
				return fmt.Errorf("flood 429 missing Retry-After header")
			}
		default:
			return fmt.Errorf("flood submission %d = %d, want 201 or 429: %s", i, resp.StatusCode, body)
		}
	}
	if admitted != 2 || refused != 6 {
		return fmt.Errorf("flood: admitted=%d refused=%d, want 2/6 (burst 2)", admitted, refused)
	}
	fmt.Fprintf(os.Stderr, "smoke-overload: flood tenant: %d admitted, %d refused with Retry-After\n", admitted, refused)

	// Phase 2: the probe tenant submits one interactive job while the
	// flood backlog is queued; it must complete promptly.
	resp, body, err := post(base+"/jobs", probeKey, probeSpec)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("probe submission = %d: %s", resp.StatusCode, body)
	}
	probeID := jobID(body)
	if err := waitDone(base, probeID, time.Minute); err != nil {
		return fmt.Errorf("probe under flood: %w", err)
	}
	loaded, code, err := get(base + "/jobs/" + probeID + "/result")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("probe result = %d", code)
	}
	fmt.Fprintln(os.Stderr, "smoke-overload: probe tenant completed under flood")

	// Phase 3: halt-policy campaign. Cell a is a slow suite we cancel
	// mid-run; b is independent; c depends on b and must be skipped by
	// the halt — deterministically, because c cannot launch before b
	// finishes and the halt lands while b is still queued or running.
	campBody := fmt.Sprintf(`{"name":"drill","policy":"halt","priority":"batch","cells":[`+
		`{"id":"a","spec":%s},`+
		`{"id":"b","spec":{"kind":"run","kernel":"CG","nodes":6}},`+
		`{"id":"c","after":["b"],"spec":{"kind":"run","kernel":"CG","nodes":7}}]}`, slowCell)
	resp, body, err = post(base+"/campaigns", probeKey, campBody)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("POST /campaigns = %d: %s", resp.StatusCode, body)
	}
	var created struct {
		Campaign struct {
			ID    string `json:"id"`
			Cells []struct {
				ID  string `json:"id"`
				Job string `json:"job"`
			} `json:"cells"`
		} `json:"campaign"`
	}
	if err := json.Unmarshal([]byte(body), &created); err != nil {
		return fmt.Errorf("decode campaign: %w (%s)", err, body)
	}
	campID := created.Campaign.ID
	var cellAJob string
	for _, c := range created.Campaign.Cells {
		if c.ID == "a" {
			cellAJob = c.Job
		}
	}
	if cellAJob == "" {
		return fmt.Errorf("campaign view has no job id for cell a: %s", body)
	}
	if err := waitState(base, cellAJob, "running", time.Minute); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+cellAJob, nil)
	if err != nil {
		return err
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		return fmt.Errorf("DELETE cell a job = %d", dresp.StatusCode)
	}
	camp, err := waitCampaignTerminal(base, campID, 2*time.Minute)
	if err != nil {
		return err
	}
	if camp.State != "failed" {
		return fmt.Errorf("campaign state = %q, want failed", camp.State)
	}
	states := map[string]cellView{}
	for _, c := range camp.Cells {
		states[c.ID] = c
	}
	if states["a"].State != "failed" {
		return fmt.Errorf("cell a = %+v, want failed (cancelled)", states["a"])
	}
	if states["b"].State != "done" {
		return fmt.Errorf("cell b = %+v, want done (already launched when halt hit)", states["b"])
	}
	if states["c"].State != "skipped" || !strings.Contains(states["c"].Error, "halted") {
		return fmt.Errorf("cell c = %+v, want skipped by halt", states["c"])
	}
	fmt.Fprintf(os.Stderr, "smoke-overload: halt campaign settled failed; cell c skipped (%q)\n", states["c"].Error)

	// Metrics: admission refusals, probe dispatches, and the campaign
	// rollup are all visible.
	metrics, _, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		`slipd_tenant_limited_total{tenant="flood",reason="rate"} 6`,
		`slipd_tenant_admitted_total{tenant="flood"} 2`,
		`slipd_campaigns{state="failed"} 1`,
		`slipd_campaign_cells_total{outcome="skipped"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("metrics missing %q", want)
		}
	}

	if err := stopGracefully(cmd); err != nil {
		return err
	}

	// Phase 4: the same probe spec on a fresh, unloaded slipd must
	// produce byte-identical output — overload shapes scheduling, never
	// results.
	ref, refBase, err := startSlipd(bin, "-no-persist")
	if err != nil {
		return err
	}
	defer ref.Process.Kill()
	if err := waitHealthy(refBase, 10*time.Second); err != nil {
		return err
	}
	resp, body, err = post(refBase+"/jobs", "", probeSpec)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("reference submission = %d: %s", resp.StatusCode, body)
	}
	refID := jobID(body)
	if err := waitDone(refBase, refID, time.Minute); err != nil {
		return err
	}
	unloaded, code, err := get(refBase + "/jobs/" + refID + "/result")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("reference result = %d", code)
	}
	if loaded != unloaded {
		return fmt.Errorf("probe result under flood differs from unloaded run:\n--- loaded ---\n%s\n--- unloaded ---\n%s", loaded, unloaded)
	}
	fmt.Fprintln(os.Stderr, "smoke-overload: probe result byte-identical to unloaded run")
	return stopGracefully(ref)
}

func startSlipd(bin string, extra ...string) (*exec.Cmd, string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	addr := l.Addr().String()
	l.Close()

	args := append([]string{"-addr", addr, "-workers", "1", "-drain", "2m"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("start %s: %w", bin, err)
	}
	return cmd, "http://" + addr, nil
}

func stopGracefully(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("slipd exited non-zero after SIGTERM: %w", err)
		}
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("slipd did not exit within 2m of SIGTERM")
	}
	return nil
}

// post sends a JSON body with an optional tenant API key.
func post(url, key, body string) (*http.Response, string, error) {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, "", err
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(b), nil
}

func jobID(submitBody string) string {
	var sr struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	json.Unmarshal([]byte(submitBody), &sr)
	return sr.Job.ID
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, code, err := get(base + "/healthz"); err == nil && code == http.StatusOK {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s/healthz not 200 within %s", base, timeout)
}

type jobStateView struct {
	State string `json:"state"`
	Error string `json:"error"`
}

func waitDone(base, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v, err := jobView(base, id)
		if err != nil {
			return err
		}
		if v.State == "done" {
			return nil
		}
		if v.State == "failed" {
			return fmt.Errorf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("job %s not done within %s", id, timeout)
}

func waitState(base, id, want string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v, err := jobView(base, id)
		if err != nil {
			return err
		}
		if v.State == want {
			return nil
		}
		if v.State == "done" || v.State == "failed" {
			return fmt.Errorf("job %s reached %q before %q", id, v.State, want)
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("job %s not %s within %s", id, want, timeout)
}

func jobView(base, id string) (jobStateView, error) {
	body, code, err := get(base + "/jobs/" + id)
	if err != nil {
		return jobStateView{}, err
	}
	if code != http.StatusOK {
		return jobStateView{}, fmt.Errorf("GET /jobs/%s = %d: %s", id, code, body)
	}
	var v jobStateView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		return jobStateView{}, err
	}
	return v, nil
}

type cellView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

type campaignTerminalView struct {
	State string     `json:"state"`
	Cells []cellView `json:"cells"`
}

func waitCampaignTerminal(base, id string, timeout time.Duration) (campaignTerminalView, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		body, code, err := get(base + "/campaigns/" + id)
		if err != nil {
			return campaignTerminalView{}, err
		}
		if code != http.StatusOK {
			return campaignTerminalView{}, fmt.Errorf("GET /campaigns/%s = %d: %s", id, code, body)
		}
		var v campaignTerminalView
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			return campaignTerminalView{}, err
		}
		if v.State != "running" {
			return v, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return campaignTerminalView{}, fmt.Errorf("campaign %s not terminal within %s", id, timeout)
}

func get(url string) (string, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	return string(b), resp.StatusCode, nil
}

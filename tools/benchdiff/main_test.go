package main

import (
	"os"
	"path/filepath"
	"testing"
)

func metricsOf(rows []Bench) map[string]*metrics { return aggregate(rows) }

func TestAggregateMinOfN(t *testing.T) {
	m := metricsOf([]Bench{
		{Name: "BenchmarkX", Iterations: 3, NsPerOp: 120, BytesPerOp: 900, AllocsPerOp: 11},
		{Name: "BenchmarkX", Iterations: 5, NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
	})
	x := m["BenchmarkX"]
	if x == nil || x.rows != 2 {
		t.Fatalf("bad grouping: %+v", x)
	}
	if x.ns != 100 || x.bytes != 900 || x.allocs != 10 || x.iters != 3 {
		t.Fatalf("min-of-N wrong: %+v", x)
	}
}

func TestCompareGates(t *testing.T) {
	base := metricsOf([]Bench{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100}})

	// Within tolerance: ok.
	cand := metricsOf([]Bench{{Name: "BenchmarkA", NsPerOp: 1050, AllocsPerOp: 105}})
	if f, failed := compare(base, cand, 0.10, 0.10); failed {
		t.Fatalf("within-tolerance run failed: %v", f)
	}

	// allocs/op over tolerance: fail.
	cand = metricsOf([]Bench{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 120}})
	if _, failed := compare(base, cand, 0.10, 0.10); !failed {
		t.Fatal("20 percent allocs regression passed a 10 percent gate")
	}

	// ns/op over tolerance: fail, and a looser ns-tol lets it pass.
	cand = metricsOf([]Bench{{Name: "BenchmarkA", NsPerOp: 1200, AllocsPerOp: 100}})
	if _, failed := compare(base, cand, 0.10, 0.10); !failed {
		t.Fatal("20 percent ns regression passed a 10 percent gate")
	}
	if f, failed := compare(base, cand, 0.25, 0.10); failed {
		t.Fatalf("20 percent ns regression failed a 25 percent gate: %v", f)
	}

	// Missing benchmark: fail.
	if _, failed := compare(base, metricsOf([]Bench{{Name: "BenchmarkB", NsPerOp: 1}}), 0.10, 0.10); !failed {
		t.Fatal("dropped benchmark passed the ratchet")
	}

	// Improvements never fail.
	cand = metricsOf([]Bench{{Name: "BenchmarkA", NsPerOp: 10, AllocsPerOp: 1}})
	if f, failed := compare(base, cand, 0.10, 0.10); failed {
		t.Fatalf("improvement failed the ratchet: %v", f)
	}
}

func TestZeroAllocBaselineStaysZero(t *testing.T) {
	base := metricsOf([]Bench{{Name: "BenchmarkZ", NsPerOp: 100, AllocsPerOp: 0}})
	cand := metricsOf([]Bench{{Name: "BenchmarkZ", NsPerOp: 100, AllocsPerOp: 1}})
	if _, failed := compare(base, cand, 0.10, 0.10); !failed {
		t.Fatal("0 -> 1 allocs/op passed the ratchet")
	}
}

func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR2.json", "BENCH_PR6.json", "BENCH_PR10.json", "BENCH_candidate.json", "notes.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("[]"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_PR10.json" {
		t.Fatalf("latestBaseline picked %s, want BENCH_PR10.json", got)
	}
	if _, err := latestBaseline(t.TempDir()); err == nil {
		t.Fatal("empty dir should yield an error")
	}
}

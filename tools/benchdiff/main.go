// Command benchdiff compares a candidate benchmark JSON file (produced by
// tools/benchjson) against a committed baseline and fails when a metric
// regresses beyond its tolerance. It is the CI perf ratchet behind
// `make bench-check`.
//
// Rows with the same benchmark name (e.g. from `go test -count=N`) are
// grouped and the minimum of each metric is compared — min-of-N is robust
// against scheduler noise on shared CI runners. Tolerances are per metric:
// allocs/op and B/op are deterministic for this simulator, so they get the
// tight gate; ns/op is host-timing dependent and may be given a looser one
// via -ns-tol.
//
// A benchmark present in the baseline but missing from the candidate is a
// failure too: silently dropping a gated benchmark must not pass the
// ratchet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Bench mirrors tools/benchjson's output row.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_op,omitempty"`
}

// metrics is the min-of-N aggregate of one benchmark's rows.
type metrics struct {
	ns     float64
	bytes  int64
	allocs int64
	iters  int64 // minimum iteration count observed
	rows   int
}

// aggregate groups rows by name and keeps the minimum of each metric.
func aggregate(rows []Bench) map[string]*metrics {
	out := make(map[string]*metrics, len(rows))
	for _, r := range rows {
		m := out[r.Name]
		if m == nil {
			out[r.Name] = &metrics{ns: r.NsPerOp, bytes: r.BytesPerOp, allocs: r.AllocsPerOp, iters: r.Iterations, rows: 1}
			continue
		}
		m.rows++
		if r.NsPerOp < m.ns {
			m.ns = r.NsPerOp
		}
		if r.BytesPerOp < m.bytes {
			m.bytes = r.BytesPerOp
		}
		if r.AllocsPerOp < m.allocs {
			m.allocs = r.AllocsPerOp
		}
		if r.Iterations < m.iters {
			m.iters = r.Iterations
		}
	}
	return out
}

// finding is one comparison result line.
type finding struct {
	name string
	msg  string
	fail bool
}

// compare evaluates candidate against baseline under the given tolerances
// and returns the findings plus whether any gate failed.
func compare(base, cand map[string]*metrics, nsTol, allocsTol float64) ([]finding, bool) {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	var out []finding
	failed := false
	for _, n := range names {
		b, c := base[n], cand[n]
		if c == nil {
			out = append(out, finding{n, "missing from candidate (benchmark removed or renamed?)", true})
			failed = true
			continue
		}
		if bad, msg := gateInt(c.allocs, b.allocs, allocsTol, "allocs/op"); bad {
			out = append(out, finding{n, msg, true})
			failed = true
		}
		if b.ns > 0 && c.ns > b.ns*(1+nsTol) {
			out = append(out, finding{n, fmt.Sprintf("ns/op regressed %.0f -> %.0f (%+.1f%%, tol %.0f%%)",
				b.ns, c.ns, 100*(c.ns/b.ns-1), 100*nsTol), true})
			failed = true
		}
	}
	return out, failed
}

// gateInt applies a relative tolerance to an integer metric; a zero
// baseline means any nonzero candidate value is a regression.
func gateInt(cand, base int64, tol float64, label string) (bool, string) {
	if base == 0 {
		if cand > 0 {
			return true, fmt.Sprintf("%s regressed 0 -> %d (baseline was allocation-free)", label, cand)
		}
		return false, ""
	}
	if float64(cand) > float64(base)*(1+tol) {
		return true, fmt.Sprintf("%s regressed %d -> %d (%+.1f%%, tol %.0f%%)",
			label, base, cand, 100*(float64(cand)/float64(base)-1), 100*tol)
	}
	return false, ""
}

var baselinePat = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// latestBaseline returns the BENCH_PRn.json with the highest n in dir.
func latestBaseline(dir string) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range ents {
		m := baselinePat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if n > bestN {
			bestN, best = n, filepath.Join(dir, e.Name())
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_PRn.json baseline found in %s", dir)
	}
	return best, nil
}

func load(path string) (map[string]*metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []Bench
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no benchmark rows", path)
	}
	return aggregate(rows), nil
}

func main() {
	var (
		baseline  = flag.String("baseline", "latest", "baseline JSON file, or 'latest' to use the highest-numbered BENCH_PRn.json in -dir")
		dir       = flag.String("dir", ".", "directory searched for the latest baseline")
		newPath   = flag.String("new", "", "candidate JSON file to gate (required)")
		nsTol     = flag.Float64("ns-tol", 0.10, "relative ns/op regression tolerance")
		allocsTol = flag.Float64("allocs-tol", 0.10, "relative allocs/op regression tolerance")
		minIters  = flag.Int64("min-iters", 2, "warn when a gated benchmark ran fewer iterations than this")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	basePath := *baseline
	if basePath == "latest" {
		var err error
		basePath, err = latestBaseline(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	if abs, _ := filepath.Abs(basePath); abs != "" {
		if nabs, _ := filepath.Abs(*newPath); nabs == abs {
			fmt.Fprintf(os.Stderr, "benchdiff: candidate and baseline are the same file (%s); the bench target must not overwrite the committed baseline\n", basePath)
			os.Exit(2)
		}
	}
	base, err := load(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cand, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	for name, m := range cand {
		if m.iters < *minIters {
			fmt.Fprintf(os.Stderr, "benchdiff: warning: %s ran %d iteration(s); single-iteration timings are noisy (raise -benchtime)\n", name, m.iters)
		}
	}

	findings, failed := compare(base, cand, *nsTol, *allocsTol)
	improved, checked := 0, 0
	for n, b := range base {
		if c := cand[n]; c != nil {
			checked++
			if c.allocs < b.allocs || (b.ns > 0 && c.ns < b.ns) {
				improved++
			}
		}
	}
	fmt.Printf("benchdiff: %s vs %s: %d benchmarks gated, %d improved, %d regressions\n",
		*newPath, basePath, checked, improved, len(findings))
	for _, f := range findings {
		fmt.Printf("  FAIL %s: %s\n", f.name, f.msg)
	}
	if failed {
		fmt.Println("benchdiff: performance ratchet FAILED")
		os.Exit(1)
	}
	fmt.Println("benchdiff: performance ratchet ok")
}

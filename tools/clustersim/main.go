// Command clustersim sweeps seeded cluster simulation schedules and
// fails loudly on the first invariant violation. Every schedule —
// crashes, partitions, message loss, clock skew — derives from its
// seed, so a red seed reproduces exactly:
//
//	go run ./tools/clustersim -start 4171 -seeds 1 -v
//
// The default sweep is sized for CI; -seeds/-parallel scale it up for
// soak runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/netchaos"
	"repro/internal/cluster/simtest"
)

func main() {
	var (
		start    = flag.Uint64("start", 1, "first seed")
		seeds    = flag.Uint64("seeds", 500, "number of consecutive seeds to run")
		coords   = flag.Int("coordinators", 3, "coordinators per schedule")
		workers  = flag.Int("workers", 3, "workers per schedule")
		jobs     = flag.Int("jobs", 10, "jobs submitted per schedule")
		horizon  = flag.Duration("horizon", 400*time.Millisecond, "scripted portion of each schedule")
		settle   = flag.Duration("settle", 15*time.Second, "convergence deadline after the horizon")
		chaosStr = flag.String("chaos", "", "chaos spec override (drop=0.05,delay=0.1:1ms:8ms,dup=0.02,reorder=0.03,skew=20ms); default simtest.DefaultChaos")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "schedules in flight at once")
		verbose  = flag.Bool("v", false, "per-seed progress lines")
	)
	flag.Parse()

	var spec netchaos.Spec
	if *chaosStr != "" {
		s, err := netchaos.ParseSpec(*chaosStr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: bad -chaos: %v\n", err)
			os.Exit(2)
		}
		spec = s
	} else {
		spec = simtest.DefaultChaos()
	}

	type failure struct {
		seed       uint64
		violations []string
	}
	var (
		mu       sync.Mutex
		failures []failure
		done     atomic.Uint64
		injected atomic.Uint64
		expired  atomic.Uint64
		granted  atomic.Uint64
		dups     atomic.Uint64
	)

	t0 := time.Now()
	sem := make(chan struct{}, max(1, *parallel))
	var wg sync.WaitGroup
	for i := uint64(0); i < *seeds; i++ {
		seed := *start + i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rep, err := simtest.Run(simtest.Options{
				Seed:          seed,
				Coordinators:  *coords,
				Workers:       *workers,
				Jobs:          *jobs,
				Chaos:         spec,
				Horizon:       *horizon,
				SettleTimeout: *settle,
			})
			if err != nil {
				mu.Lock()
				failures = append(failures, failure{seed, []string{"harness error: " + err.Error()}})
				mu.Unlock()
				return
			}
			injected.Add(rep.ChaosInjected)
			expired.Add(rep.Expirations)
			granted.Add(rep.Granted)
			dups.Add(rep.Duplicates)
			if !rep.OK() {
				mu.Lock()
				failures = append(failures, failure{seed, rep.Violations})
				mu.Unlock()
			}
			n := done.Add(1)
			if *verbose || n%50 == 0 {
				fmt.Printf("clustersim: %d/%d schedules (seed %d: %d faults, %d grants, ok=%v)\n",
					n, *seeds, seed, rep.ChaosInjected, rep.Granted, rep.OK())
			}
		}()
	}
	wg.Wait()

	fmt.Printf("clustersim: %d schedules in %v — %d faults injected, %d claims granted, %d lease expirations, %d duplicate reports\n",
		*seeds, time.Since(t0).Round(time.Millisecond), injected.Load(), granted.Load(), expired.Load(), dups.Load())
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "clustersim: seed %d FAILED — reproduce with: go run ./tools/clustersim -start %d -seeds 1 -v\n", f.seed, f.seed)
			for _, v := range f.violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
		}
		fmt.Fprintf(os.Stderr, "clustersim: %d of %d seeds violated invariants\n", len(failures), *seeds)
		os.Exit(1)
	}
	if *seeds > 0 && injected.Load() == 0 && spec.Active() {
		fmt.Fprintln(os.Stderr, "clustersim: an active chaos spec injected zero faults across the sweep; the layer is inert")
		os.Exit(1)
	}
	fmt.Println("clustersim: all seeds held every invariant")
}

// Command smokefleet is the end-to-end fleet drill behind
// `make smoke-fleet`. Phase one is the failover drill: a coordinator
// plus two workers, all real processes; a slow job is dispatched, the
// worker running it is SIGKILLed mid-execution, and the job must settle
// on the survivor with bytes identical to an uninterrupted reference
// run, with slipd_failovers_total ≥ 1 on the coordinator. Phase two is
// the degradation drill: a coordinator with zero workers must execute
// jobs locally, report "degraded":true on /readyz, and count the local
// fallback in its metrics.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

// fastSpec finishes in seconds; slowSpec runs long enough that a SIGKILL
// reliably lands while a worker is still executing it.
const (
	fastSpec = `{"kind":"scaling","kernel":"CG","node_counts":[2,4],"scale":"test"}`
	slowSpec = `{"kind":"static","kernels":["CG"],"nodes":8,"scale":"small"}`
)

func main() {
	bin := "bin/slipd"
	if len(os.Args) > 1 {
		bin = os.Args[1]
	}
	if err := failoverDrill(bin); err != nil {
		fmt.Fprintln(os.Stderr, "smoke-fleet: FAILED:", err)
		os.Exit(1)
	}
	if err := degradedDrill(bin); err != nil {
		fmt.Fprintln(os.Stderr, "smoke-fleet: FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("smoke-fleet: PASSED")
}

// failoverDrill: coordinator + 2 workers, SIGKILL the worker running the
// job, assert the survivor finishes it byte-identically.
func failoverDrill(bin string) error {
	ref, err := referenceRun(bin, slowSpec)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	coord, coordBase, err := startSlipd(bin, "-no-persist", "-coordinator",
		"-heartbeat-interval", "300ms", "-suspect-after", "1s", "-dead-after", "2s")
	if err != nil {
		return err
	}
	defer coord.Process.Kill()
	if err := waitReady(coordBase, 10*time.Second); err != nil {
		return err
	}

	type workerProc struct {
		cmd  *exec.Cmd
		base string
	}
	workers := map[string]workerProc{}
	for _, id := range []string{"w1", "w2"} {
		cmd, base, err := startSlipd(bin, "-no-persist", "-worker",
			"-join", coordBase, "-worker-id", id)
		if err != nil {
			return err
		}
		defer cmd.Process.Kill()
		workers[id] = workerProc{cmd, base}
	}

	// Both workers must enroll through register + heartbeat.
	if err := waitWorkers(coordBase, 2, 15*time.Second); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "smoke-fleet: 2 workers live")

	id, key, _, err := submit(coordBase, slowSpec)
	if err != nil {
		return err
	}

	// Find which worker the job landed on and wait until it is actually
	// executing there — a SIGKILL before execution would only test
	// dispatch retry, not mid-job failover.
	victim, err := findAssignedWorker(coordBase, key, 30*time.Second)
	if err != nil {
		return err
	}
	vp, ok := workers[victim]
	if !ok {
		return fmt.Errorf("job assigned to unknown worker %q", victim)
	}
	if err := waitWorkerRunning(vp.base, 30*time.Second); err != nil {
		return err
	}
	if err := vp.cmd.Process.Kill(); err != nil {
		return err
	}
	vp.cmd.Wait()
	fmt.Fprintf(os.Stderr, "smoke-fleet: SIGKILLed worker %s while running %s\n", victim, id)

	// The coordinator must fail the job over to the survivor and the
	// bytes must match the uninterrupted reference exactly.
	if err := waitDone(coordBase, id, 3*time.Minute); err != nil {
		return fmt.Errorf("job after worker kill: %w", err)
	}
	got, code, err := get(coordBase + "/jobs/" + id + "/result")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("GET result = %d", code)
	}
	if got != ref {
		return fmt.Errorf("failover result differs from uninterrupted run:\n--- failover ---\n%s--- reference ---\n%s", got, ref)
	}
	fmt.Fprintln(os.Stderr, "smoke-fleet: failover produced byte-identical output")

	metrics, _, err := get(coordBase + "/metrics")
	if err != nil {
		return err
	}
	fail, err := metricValue(metrics, "slipd_failovers_total")
	if err != nil {
		return err
	}
	if fail < 1 {
		return fmt.Errorf("slipd_failovers_total = %d, want >= 1:\n%s", fail, metrics)
	}
	if !strings.Contains(metrics, `slipd_workers{state="live"} 1`) {
		return fmt.Errorf("metrics missing surviving worker gauge:\n%s", metrics)
	}
	fmt.Fprintf(os.Stderr, "smoke-fleet: coordinator counted %d failover(s)\n", fail)

	// Survivor and coordinator both drain cleanly.
	for wid, wp := range workers {
		if wid == victim {
			continue
		}
		if err := stopGracefully(wp.cmd); err != nil {
			return fmt.Errorf("stop worker %s: %w", wid, err)
		}
	}
	return stopGracefully(coord)
}

// degradedDrill: a coordinator with zero workers still answers, locally.
func degradedDrill(bin string) error {
	ref, err := referenceRun(bin, fastSpec)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	coord, base, err := startSlipd(bin, "-no-persist", "-coordinator")
	if err != nil {
		return err
	}
	defer coord.Process.Kill()
	if err := waitReady(base, 10*time.Second); err != nil {
		return err
	}

	ready, _, err := get(base + "/readyz")
	if err != nil {
		return err
	}
	if !strings.Contains(ready, `"degraded":true`) {
		return fmt.Errorf("zero-worker coordinator readyz = %s, want degraded:true", ready)
	}

	id, _, _, err := submit(base, fastSpec)
	if err != nil {
		return err
	}
	if err := waitDone(base, id, 2*time.Minute); err != nil {
		return fmt.Errorf("degraded job: %w", err)
	}
	got, code, err := get(base + "/jobs/" + id + "/result")
	if err != nil {
		return err
	}
	if code != http.StatusOK || got != ref {
		return fmt.Errorf("degraded result: HTTP %d, bytes match=%v", code, got == ref)
	}

	metrics, _, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		`slipd_workers{state="live"} 0`,
		"slipd_local_fallbacks_total 1",
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("degraded metrics missing %q:\n%s", want, metrics)
		}
	}
	fmt.Fprintln(os.Stderr, "smoke-fleet: zero-worker coordinator executed locally in degraded mode")
	return stopGracefully(coord)
}

// clusterView mirrors GET /cluster/workers.
type clusterView struct {
	Workers []struct {
		ID       string   `json:"id"`
		State    string   `json:"state"`
		Inflight []string `json:"inflight"`
	} `json:"workers"`
	Degraded bool `json:"degraded"`
}

func clusterWorkers(base string) (clusterView, error) {
	body, code, err := get(base + "/cluster/workers")
	if err != nil {
		return clusterView{}, err
	}
	if code != http.StatusOK {
		return clusterView{}, fmt.Errorf("GET /cluster/workers = %d: %s", code, body)
	}
	var cv clusterView
	if err := json.Unmarshal([]byte(body), &cv); err != nil {
		return clusterView{}, err
	}
	return cv, nil
}

// waitWorkers polls the fleet view until n workers are live.
func waitWorkers(base string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		cv, err := clusterWorkers(base)
		if err == nil {
			live := 0
			for _, w := range cv.Workers {
				if w.State == "live" {
					live++
				}
			}
			if live >= n {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("fewer than %d live workers within %s", n, timeout)
}

// findAssignedWorker polls the fleet view until some worker holds the
// job's cache key in flight.
func findAssignedWorker(base, key string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		cv, err := clusterWorkers(base)
		if err == nil {
			for _, w := range cv.Workers {
				for _, k := range w.Inflight {
					if k == key {
						return w.ID, nil
					}
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return "", fmt.Errorf("job %s never assigned to a worker within %s", key, timeout)
}

// waitWorkerRunning polls a worker's own job list until something is
// actually executing there.
func waitWorkerRunning(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		body, code, err := get(base + "/jobs")
		if err == nil && code == http.StatusOK {
			var list struct {
				Jobs []struct {
					State string `json:"state"`
				} `json:"jobs"`
			}
			if json.Unmarshal([]byte(body), &list) == nil {
				for _, j := range list.Jobs {
					if j.State == "running" {
						return nil
					}
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("worker %s never started executing within %s", base, timeout)
}

// metricValue extracts an integer counter from a /metrics body.
func metricValue(metrics, name string) (int, error) {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int
			if _, err := fmt.Sscanf(line, name+" %d", &v); err != nil {
				return 0, fmt.Errorf("parse %q: %w", line, err)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// referenceRun executes a spec to completion on a plain memory-only
// instance and returns the rendered result.
func referenceRun(bin, spec string) (string, error) {
	cmd, base, err := startSlipd(bin, "-no-persist")
	if err != nil {
		return "", err
	}
	defer cmd.Process.Kill()
	if err := waitReady(base, 10*time.Second); err != nil {
		return "", err
	}
	id, _, _, err := submit(base, spec)
	if err != nil {
		return "", err
	}
	if err := waitDone(base, id, 3*time.Minute); err != nil {
		return "", err
	}
	result, code, err := get(base + "/jobs/" + id + "/result")
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("GET result = %d", code)
	}
	return result, stopGracefully(cmd)
}

// startSlipd launches the daemon on a free port and returns the running
// process plus its base URL.
func startSlipd(bin string, extra ...string) (*exec.Cmd, string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	addr := l.Addr().String()
	l.Close()

	args := append([]string{"-addr", addr, "-workers", "1", "-drain", "2m"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("start %s: %w", bin, err)
	}
	return cmd, "http://" + addr, nil
}

// stopGracefully SIGTERMs the daemon and requires a clean drain.
func stopGracefully(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("slipd exited non-zero after SIGTERM: %w", err)
		}
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("slipd did not exit within 2m of SIGTERM")
	}
	return nil
}

// submit POSTs a spec and returns the new job's id, cache key, and
// whether it was served from the result cache.
func submit(base, spec string) (id, key string, cached bool, err error) {
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return "", "", false, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", "", false, fmt.Errorf("POST /jobs = %d: %s", resp.StatusCode, body)
	}
	var sr struct {
		Job struct {
			ID  string `json:"id"`
			Key string `json:"key"`
		} `json:"job"`
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		return "", "", false, fmt.Errorf("decode submit response: %w (%s)", err, body)
	}
	return sr.Job.ID, sr.Job.Key, sr.Cached, nil
}

// waitReady polls /readyz, which only turns 200 after journal replay.
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, code, err := get(base + "/readyz"); err == nil && code == http.StatusOK {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s/readyz not 200 within %s", base, timeout)
}

func waitDone(base, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		body, code, err := get(base + "/jobs/" + id)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("GET /jobs/%s = %d: %s", id, code, body)
		}
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			return err
		}
		switch v.State {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("job %s not done within %s", id, timeout)
}

func get(url string) (string, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	return string(b), resp.StatusCode, nil
}

// Command smokefleet drives the end-to-end fleet drills.
//
// `smokefleet <bin>` (or `smokefleet <bin> fleet`, `make smoke-fleet`)
// runs the worker drills: a clean run through the claim path must settle
// with zero lease expirations; then a worker is SIGKILLed while holding
// a claim and the job must settle on the survivor — via lease expiry,
// slipd_lease_expirations_total ≥ 1 — with bytes identical to an
// uninterrupted reference run; finally a coordinator with zero workers
// must execute locally in degraded mode.
//
// `smokefleet <bin> ha` (`make smoke-ha`) runs the coordinator-kill
// drill: two peered coordinators replicating the claim table, two
// workers claiming from both. The coordinator that granted the in-flight
// job's lease is SIGKILLed; the worker's terminal report dies with it,
// so the drill passes only if the survivor's replicated copy of the
// lease expires, a worker reclaims the job through the survivor, and the
// survivor serves byte-identical bytes with zero claims left stranded.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

// fastSpec finishes in seconds; slowSpec runs long enough that a SIGKILL
// reliably lands while the claim is still leased and executing.
const (
	fastSpec = `{"kind":"scaling","kernel":"CG","node_counts":[2,4],"scale":"test"}`
	slowSpec = `{"kind":"static","kernels":["CG"],"nodes":8,"scale":"small"}`
)

func main() {
	bin := "bin/slipd"
	if len(os.Args) > 1 {
		bin = os.Args[1]
	}
	drill := "fleet"
	if len(os.Args) > 2 {
		drill = os.Args[2]
	}
	switch drill {
	case "fleet":
		if err := workerKillDrill(bin); err != nil {
			fmt.Fprintln(os.Stderr, "smoke-fleet: FAILED:", err)
			os.Exit(1)
		}
		if err := degradedDrill(bin); err != nil {
			fmt.Fprintln(os.Stderr, "smoke-fleet: FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("smoke-fleet: PASSED")
	case "ha":
		if err := coordinatorKillDrill(bin); err != nil {
			fmt.Fprintln(os.Stderr, "smoke-ha: FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("smoke-ha: PASSED")
	default:
		fmt.Fprintf(os.Stderr, "smokefleet: unknown drill %q (want fleet or ha)\n", drill)
		os.Exit(2)
	}
}

// workerKillDrill: coordinator + 2 workers on the pull path. A clean job
// first (zero reclaims), then SIGKILL the worker holding a claim and
// require the survivor to finish it byte-identically via lease expiry.
func workerKillDrill(bin string) error {
	refFast, err := referenceRun(bin, fastSpec)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	refSlow, err := referenceRun(bin, slowSpec)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	coord, coordBase, err := startSlipd(bin, "-no-persist", "-coordinator",
		"-heartbeat-interval", "300ms", "-suspect-after", "1s", "-dead-after", "2s",
		"-claim-lease", "2s")
	if err != nil {
		return err
	}
	defer coord.Process.Kill()
	if err := waitReady(coordBase, 10*time.Second); err != nil {
		return err
	}

	type workerProc struct {
		cmd  *exec.Cmd
		base string
	}
	workers := map[string]workerProc{}
	for _, id := range []string{"w1", "w2"} {
		cmd, base, err := startSlipd(bin, "-no-persist", "-worker",
			"-join", coordBase, "-worker-id", id, "-claim-poll", "500ms")
		if err != nil {
			return err
		}
		defer cmd.Process.Kill()
		workers[id] = workerProc{cmd, base}
	}

	// Both workers must enroll through register + heartbeat.
	if err := waitWorkers(coordBase, 2, 15*time.Second); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "smoke-fleet: 2 workers live")

	// Phase 1 — clean run: a job claimed, executed, and reported without
	// any failure must never touch the lease-recovery machinery.
	id, _, _, err := submit(coordBase, fastSpec)
	if err != nil {
		return err
	}
	if err := waitDone(coordBase, id, 2*time.Minute); err != nil {
		return fmt.Errorf("clean claim run: %w", err)
	}
	got, code, err := get(coordBase + "/jobs/" + id + "/result")
	if err != nil {
		return err
	}
	if code != http.StatusOK || got != refFast {
		return fmt.Errorf("clean run result: HTTP %d, bytes match=%v", code, got == refFast)
	}
	metrics, _, err := get(coordBase + "/metrics")
	if err != nil {
		return err
	}
	if n, err := metricValue(metrics, `slipd_claims_total{outcome="done"}`); err != nil || n < 1 {
		return fmt.Errorf("clean run settled no claims (done=%d, err=%v):\n%s", n, err, metrics)
	}
	if n, err := metricValue(metrics, "slipd_lease_expirations_total"); err != nil || n != 0 {
		return fmt.Errorf("clean run expired %d leases, want 0 (err=%v):\n%s", n, err, metrics)
	}
	fmt.Fprintln(os.Stderr, "smoke-fleet: clean claim run settled with zero lease expirations")

	// Phase 2 — worker kill: find which worker holds the slow job's
	// lease, wait until it is actually executing, SIGKILL it.
	id, key, _, err := submit(coordBase, slowSpec)
	if err != nil {
		return err
	}
	victim, err := findClaimHolder(coordBase, key, 30*time.Second)
	if err != nil {
		return err
	}
	vp, ok := workers[victim]
	if !ok {
		return fmt.Errorf("claim held by unknown worker %q", victim)
	}
	if err := waitWorkerRunning(vp.base, 30*time.Second); err != nil {
		return err
	}
	if err := vp.cmd.Process.Kill(); err != nil {
		return err
	}
	vp.cmd.Wait()
	fmt.Fprintf(os.Stderr, "smoke-fleet: SIGKILLed worker %s while it held the claim for %s\n", victim, id)

	// The lease must expire and the survivor must finish the job with
	// bytes identical to the uninterrupted reference.
	if err := waitDone(coordBase, id, 3*time.Minute); err != nil {
		return fmt.Errorf("job after worker kill: %w", err)
	}
	got, code, err = get(coordBase + "/jobs/" + id + "/result")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("GET result = %d", code)
	}
	if got != refSlow {
		return fmt.Errorf("post-kill result differs from uninterrupted run:\n--- survivor ---\n%s--- reference ---\n%s", got, refSlow)
	}
	fmt.Fprintln(os.Stderr, "smoke-fleet: lease recovery produced byte-identical output")

	metrics, _, err = get(coordBase + "/metrics")
	if err != nil {
		return err
	}
	exp, err := metricValue(metrics, "slipd_lease_expirations_total")
	if err != nil {
		return err
	}
	if exp < 1 {
		return fmt.Errorf("slipd_lease_expirations_total = %d, want >= 1:\n%s", exp, metrics)
	}
	if !strings.Contains(metrics, `slipd_workers{state="live"} 1`) {
		return fmt.Errorf("metrics missing surviving worker gauge:\n%s", metrics)
	}
	fmt.Fprintf(os.Stderr, "smoke-fleet: coordinator counted %d expired lease(s)\n", exp)

	// Survivor and coordinator both drain cleanly.
	for wid, wp := range workers {
		if wid == victim {
			continue
		}
		if err := stopGracefully(wp.cmd); err != nil {
			return fmt.Errorf("stop worker %s: %w", wid, err)
		}
	}
	return stopGracefully(coord)
}

// coordinatorKillDrill: two peered coordinators, two workers claiming
// from both. SIGKILL the coordinator that granted the in-flight lease;
// the survivor's replicated copy must expire, be reclaimed, and settle
// byte-identically with nothing stranded.
func coordinatorKillDrill(bin string) error {
	ref, err := referenceRun(bin, slowSpec)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	addrA, err := freeAddr()
	if err != nil {
		return err
	}
	addrB, err := freeAddr()
	if err != nil {
		return err
	}
	baseA, baseB := "http://"+addrA, "http://"+addrB

	coordFlags := []string{"-no-persist", "-coordinator",
		"-heartbeat-interval", "300ms", "-suspect-after", "1s", "-dead-after", "2s",
		"-claim-lease", "2s"}
	coA, err := startSlipdAt(bin, addrA, append(coordFlags, "-join-coordinator", baseB)...)
	if err != nil {
		return err
	}
	defer coA.Process.Kill()
	coB, err := startSlipdAt(bin, addrB, append(coordFlags, "-join-coordinator", baseA)...)
	if err != nil {
		return err
	}
	defer coB.Process.Kill()
	for _, base := range []string{baseA, baseB} {
		if err := waitReady(base, 10*time.Second); err != nil {
			return err
		}
	}

	for _, id := range []string{"w1", "w2"} {
		cmd, _, err := startSlipd(bin, "-no-persist", "-worker",
			"-join", baseA+","+baseB, "-worker-id", id, "-claim-poll", "500ms")
		if err != nil {
			return err
		}
		defer cmd.Process.Kill()
	}
	for _, base := range []string{baseA, baseB} {
		if err := waitWorkers(base, 2, 15*time.Second); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "smoke-ha: 2 coordinators peered, 2 workers enrolled with both")

	_, key, _, err := submit(baseA, slowSpec)
	if err != nil {
		return err
	}

	// Identify the coordinator that granted the lease: grant counters are
	// local-only, so exactly one side shows the grant.
	granter, survivor, err := findGranter(baseA, baseB, 30*time.Second)
	if err != nil {
		return err
	}
	granterCmd, survivorBase := coA, baseB
	if granter == baseB {
		granterCmd, survivorBase = coB, baseA
	}

	// The claimed lease must be replicated to the survivor before the
	// kill — that replica is what the whole drill recovers from.
	if err := waitClaimState(survivor, key, "claimed", 30*time.Second); err != nil {
		return fmt.Errorf("lease never replicated to survivor: %w", err)
	}
	if err := granterCmd.Process.Kill(); err != nil {
		return err
	}
	granterCmd.Wait()
	fmt.Fprintf(os.Stderr, "smoke-ha: SIGKILLed granting coordinator %s; worker reports to it are now lost\n", granter)

	// On the survivor alone: lease expiry, reclaim, settle.
	if err := waitClaimState(survivorBase, key, "done", 3*time.Minute); err != nil {
		return fmt.Errorf("claim never settled on survivor: %w", err)
	}
	got, code, err := get(survivorBase + "/results/" + key)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("survivor GET /results/%s = %d", key, code)
	}
	if got != ref {
		return fmt.Errorf("survivor result differs from uninterrupted run:\n--- survivor ---\n%s--- reference ---\n%s", got, ref)
	}
	fmt.Fprintln(os.Stderr, "smoke-ha: survivor served byte-identical result bytes")

	metrics, _, err := get(survivorBase + "/metrics")
	if err != nil {
		return err
	}
	exp, err := metricValue(metrics, "slipd_lease_expirations_total")
	if err != nil {
		return err
	}
	if exp < 1 {
		return fmt.Errorf("survivor slipd_lease_expirations_total = %d, want >= 1:\n%s", exp, metrics)
	}
	if n, err := metricValue(metrics, `slipd_claims_total{outcome="done"}`); err != nil || n < 1 {
		return fmt.Errorf("survivor settled no claims (done=%d, err=%v):\n%s", n, err, metrics)
	}

	// Zero stranded jobs: every claim the survivor knows is terminal.
	claims, err := clusterClaims(survivorBase)
	if err != nil {
		return err
	}
	for _, c := range claims {
		if c.State != "done" && c.State != "failed" {
			return fmt.Errorf("stranded claim on survivor: %+v", c)
		}
	}
	fmt.Fprintf(os.Stderr, "smoke-ha: survivor expired %d lease(s), zero claims stranded\n", exp)
	return nil
}

// degradedDrill: a coordinator with zero workers still answers, locally.
func degradedDrill(bin string) error {
	ref, err := referenceRun(bin, fastSpec)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	coord, base, err := startSlipd(bin, "-no-persist", "-coordinator")
	if err != nil {
		return err
	}
	defer coord.Process.Kill()
	if err := waitReady(base, 10*time.Second); err != nil {
		return err
	}

	ready, _, err := get(base + "/readyz")
	if err != nil {
		return err
	}
	if !strings.Contains(ready, `"degraded":true`) {
		return fmt.Errorf("zero-worker coordinator readyz = %s, want degraded:true", ready)
	}

	id, _, _, err := submit(base, fastSpec)
	if err != nil {
		return err
	}
	if err := waitDone(base, id, 2*time.Minute); err != nil {
		return fmt.Errorf("degraded job: %w", err)
	}
	got, code, err := get(base + "/jobs/" + id + "/result")
	if err != nil {
		return err
	}
	if code != http.StatusOK || got != ref {
		return fmt.Errorf("degraded result: HTTP %d, bytes match=%v", code, got == ref)
	}

	metrics, _, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		`slipd_workers{state="live"} 0`,
		"slipd_local_fallbacks_total 1",
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("degraded metrics missing %q:\n%s", want, metrics)
		}
	}
	fmt.Fprintln(os.Stderr, "smoke-fleet: zero-worker coordinator executed locally in degraded mode")
	return stopGracefully(coord)
}

// clusterView mirrors GET /cluster/workers.
type clusterView struct {
	Workers []struct {
		ID    string `json:"id"`
		State string `json:"state"`
	} `json:"workers"`
	Degraded bool `json:"degraded"`
}

func clusterWorkers(base string) (clusterView, error) {
	body, code, err := get(base + "/cluster/workers")
	if err != nil {
		return clusterView{}, err
	}
	if code != http.StatusOK {
		return clusterView{}, fmt.Errorf("GET /cluster/workers = %d: %s", code, body)
	}
	var cv clusterView
	if err := json.Unmarshal([]byte(body), &cv); err != nil {
		return clusterView{}, err
	}
	return cv, nil
}

// claimView mirrors one entry of GET /cluster/claims.
type claimView struct {
	Key       string `json:"key"`
	State     string `json:"state"`
	ClaimedBy string `json:"claimed_by"`
	Attempt   int    `json:"claim_attempt"`
}

func clusterClaims(base string) ([]claimView, error) {
	body, code, err := get(base + "/cluster/claims")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("GET /cluster/claims = %d: %s", code, body)
	}
	var cv struct {
		Claims []claimView `json:"claims"`
	}
	if err := json.Unmarshal([]byte(body), &cv); err != nil {
		return nil, err
	}
	return cv.Claims, nil
}

// waitWorkers polls the fleet view until n workers are live.
func waitWorkers(base string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		cv, err := clusterWorkers(base)
		if err == nil {
			live := 0
			for _, w := range cv.Workers {
				if w.State == "live" {
					live++
				}
			}
			if live >= n {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("fewer than %d live workers within %s", n, timeout)
}

// findClaimHolder polls the claim table until the job's key is leased to
// some worker, and returns that worker's id.
func findClaimHolder(base, key string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		claims, err := clusterClaims(base)
		if err == nil {
			for _, c := range claims {
				if c.Key == key && c.State == "claimed" && c.ClaimedBy != "" {
					return c.ClaimedBy, nil
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return "", fmt.Errorf("claim for %s never leased to a worker within %s", key, timeout)
}

// waitClaimState polls one coordinator's claim table until the key
// reaches the wanted state.
func waitClaimState(base, key, state string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		claims, err := clusterClaims(base)
		if err == nil {
			for _, c := range claims {
				if c.Key == key && c.State == state {
					return nil
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("claim %s never reached %q on %s within %s", key, state, base, timeout)
}

// findGranter polls two peered coordinators' metrics until exactly one
// of them has granted a lease (grant counters are local, never
// replicated) and returns (granter, survivor). Both granting is the
// rare double-claim race — legal for the fleet, but it would make this
// drill's lease-expiry assertion meaningless, so fail loudly instead.
func findGranter(a, b string, timeout time.Duration) (string, string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ga := grantedCount(a)
		gb := grantedCount(b)
		switch {
		case ga > 0 && gb == 0:
			return a, b, nil
		case gb > 0 && ga == 0:
			return b, a, nil
		case ga > 0 && gb > 0:
			return "", "", fmt.Errorf("both coordinators granted the lease (a=%d b=%d); double-claim race, rerun the drill", ga, gb)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return "", "", fmt.Errorf("no coordinator granted the lease within %s", timeout)
}

func grantedCount(base string) int {
	metrics, code, err := get(base + "/metrics")
	if err != nil || code != http.StatusOK {
		return 0
	}
	n, err := metricValue(metrics, `slipd_claims_total{outcome="granted"}`)
	if err != nil {
		return 0
	}
	return n
}

// waitWorkerRunning polls a worker's own job list until something is
// actually executing there.
func waitWorkerRunning(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		body, code, err := get(base + "/jobs")
		if err == nil && code == http.StatusOK {
			var list struct {
				Jobs []struct {
					State string `json:"state"`
				} `json:"jobs"`
			}
			if json.Unmarshal([]byte(body), &list) == nil {
				for _, j := range list.Jobs {
					if j.State == "running" {
						return nil
					}
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("worker %s never started executing within %s", base, timeout)
}

// metricValue extracts an integer counter from a /metrics body. The name
// may include a label set, e.g. `slipd_claims_total{outcome="done"}`.
func metricValue(metrics, name string) (int, error) {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%d", &v); err != nil {
				return 0, fmt.Errorf("parse %q: %w", line, err)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// referenceRun executes a spec to completion on a plain memory-only
// instance and returns the rendered result.
func referenceRun(bin, spec string) (string, error) {
	cmd, base, err := startSlipd(bin, "-no-persist")
	if err != nil {
		return "", err
	}
	defer cmd.Process.Kill()
	if err := waitReady(base, 10*time.Second); err != nil {
		return "", err
	}
	id, _, _, err := submit(base, spec)
	if err != nil {
		return "", err
	}
	if err := waitDone(base, id, 3*time.Minute); err != nil {
		return "", err
	}
	result, code, err := get(base + "/jobs/" + id + "/result")
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("GET result = %d", code)
	}
	return result, stopGracefully(cmd)
}

// freeAddr reserves a loopback address for a daemon that must know its
// peers' addresses before any of them start.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// startSlipd launches the daemon on a free port and returns the running
// process plus its base URL.
func startSlipd(bin string, extra ...string) (*exec.Cmd, string, error) {
	addr, err := freeAddr()
	if err != nil {
		return nil, "", err
	}
	cmd, err := startSlipdAt(bin, addr, extra...)
	if err != nil {
		return nil, "", err
	}
	return cmd, "http://" + addr, nil
}

// startSlipdAt launches the daemon on a specific address.
func startSlipdAt(bin, addr string, extra ...string) (*exec.Cmd, error) {
	args := append([]string{"-addr", addr, "-workers", "1", "-drain", "2m"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	return cmd, nil
}

// stopGracefully SIGTERMs the daemon and requires a clean drain.
func stopGracefully(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("slipd exited non-zero after SIGTERM: %w", err)
		}
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("slipd did not exit within 2m of SIGTERM")
	}
	return nil
}

// submit POSTs a spec and returns the new job's id, cache key, and
// whether it was served from the result cache.
func submit(base, spec string) (id, key string, cached bool, err error) {
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return "", "", false, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", "", false, fmt.Errorf("POST /jobs = %d: %s", resp.StatusCode, body)
	}
	var sr struct {
		Job struct {
			ID  string `json:"id"`
			Key string `json:"key"`
		} `json:"job"`
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		return "", "", false, fmt.Errorf("decode submit response: %w (%s)", err, body)
	}
	return sr.Job.ID, sr.Job.Key, sr.Cached, nil
}

// waitReady polls /readyz, which only turns 200 after journal replay.
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, code, err := get(base + "/readyz"); err == nil && code == http.StatusOK {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s/readyz not 200 within %s", base, timeout)
}

func waitDone(base, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		body, code, err := get(base + "/jobs/" + id)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("GET /jobs/%s = %d: %s", id, code, body)
		}
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			return err
		}
		switch v.State {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("job %s not done within %s", id, timeout)
}

func get(url string) (string, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	return string(b), resp.StatusCode, nil
}

// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON file, so benchmark numbers land in version
// control in a diffable shape (see `make bench`). The text stream is
// echoed through to stdout untouched.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark result row.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_op,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH.json", "output file")
	flag.Parse()
	benches, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(benches, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(benches), *out)
}

// parse scans stdin for benchmark result lines of the form
//
//	BenchmarkName-8   10   123456 ns/op   512 B/op   7 allocs/op
//
// echoing every line through so the human-readable stream survives.
func parse(f *os.File) ([]Bench, error) {
	var benches []Bench
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val := fields[i]
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp, err = strconv.ParseFloat(val, 64)
			case "B/op":
				b.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				b.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
			default:
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q: %v", val, line, err)
			}
		}
		benches = append(benches, b)
	}
	return benches, sc.Err()
}

package repro

// One benchmark per table and figure of the paper's evaluation (§5).
// Benchmarks run reduced problem scales on an 8-CMP machine so the full
// suite completes in minutes; the experiment harness (cmd/slipsim
// -experiment all) runs the paper-scale 16-CMP matrix. Simulated cycles
// and derived percentages are attached as benchmark metrics, so
// `go test -bench=.` prints the figure series alongside host-side cost.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/npb"
	"repro/internal/omp"
	"repro/internal/stats"
)

const benchNodes = 8

func benchParams() machine.Params {
	p := machine.DefaultParams()
	p.Nodes = benchNodes
	return p
}

// benchRun executes one kernel/config run per iteration and reports the
// simulated wall-clock cycles.
func benchRun(b *testing.B, kernel string, cfg omp.Config) experiments.Result {
	b.Helper()
	k, err := npb.ByName(kernel)
	if err != nil {
		b.Fatal(err)
	}
	if cfg.Sched != omp.Static && cfg.Chunk == 0 {
		cfg.Chunk = k.ChunkFor(npb.ScaleTest, benchNodes)
	}
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunOne(k, "bench", cfg, npb.ScaleTest, true)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Wall), "sim-cycles")
	return last
}

// ---- Table 1: simulated system parameters -----------------------------------

func BenchmarkTable1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := machine.DefaultParams()
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = p.Table1()
	}
}

// ---- Table 2: benchmark construction ----------------------------------------

func BenchmarkTable2Instances(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		for _, k := range npb.Kernels() {
			rt, err := omp.New(omp.Config{Machine: p, Mode: core.ModeSingle})
			if err != nil {
				b.Fatal(err)
			}
			_ = k.Build(rt, npb.ScaleTest)
		}
	}
}

// ---- Figure 2: static-scheduling modes, per kernel ---------------------------

func fig2Configs() map[string]omp.Config {
	p := benchParams()
	return map[string]omp.Config{
		"Single": {Machine: p, Mode: core.ModeSingle},
		"Double": {Machine: p, Mode: core.ModeDouble},
		"SlipG0": {Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0},
		"SlipL1": {Machine: p, Mode: core.ModeSlipstream, Slipstream: core.L1},
	}
}

func benchFig2(b *testing.B, kernel string) {
	for _, name := range []string{"Single", "Double", "SlipG0", "SlipL1"} {
		cfg := fig2Configs()[name]
		b.Run(name, func(b *testing.B) { benchRun(b, kernel, cfg) })
	}
}

func BenchmarkFig2BT(b *testing.B) { benchFig2(b, "BT") }
func BenchmarkFig2CG(b *testing.B) { benchFig2(b, "CG") }
func BenchmarkFig2LU(b *testing.B) { benchFig2(b, "LU") }
func BenchmarkFig2MG(b *testing.B) { benchFig2(b, "MG") }
func BenchmarkFig2SP(b *testing.B) { benchFig2(b, "SP") }

// ---- Figure 3: shared-request classification, L1 vs G0 -----------------------

func benchFig3(b *testing.B, kernel string, ss core.Config) {
	p := benchParams()
	r := benchRun(b, kernel, omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: ss})
	b.ReportMetric(100*r.Class.Share(stats.RoleA, stats.ReqRead, stats.OutTimely), "A-timely-read-%")
	b.ReportMetric(100*r.Class.Share(stats.RoleA, stats.ReqRead, stats.OutLate), "A-late-read-%")
	b.ReportMetric(100*r.Class.Share(stats.RoleA, stats.ReqRead, stats.OutOnly), "A-only-read-%")
	b.ReportMetric(100*r.Class.Share(stats.RoleA, stats.ReqReadEx, stats.OutTimely), "A-timely-rdex-%")
}

func BenchmarkFig3CG_L1(b *testing.B) { benchFig3(b, "CG", core.L1) }
func BenchmarkFig3CG_G0(b *testing.B) { benchFig3(b, "CG", core.G0) }
func BenchmarkFig3MG_L1(b *testing.B) { benchFig3(b, "MG", core.L1) }
func BenchmarkFig3MG_G0(b *testing.B) { benchFig3(b, "MG", core.G0) }

// ---- Figure 4: dynamic scheduling, base vs slipstream ------------------------

func benchFig4(b *testing.B, kernel string) {
	p := benchParams()
	b.Run("SingleDyn", func(b *testing.B) {
		r := benchRun(b, kernel, omp.Config{Machine: p, Mode: core.ModeSingle, Sched: omp.Dynamic})
		sh := r.Breakdown.Shares()
		b.ReportMetric(100*sh[stats.CatSched], "sched-%")
	})
	b.Run("SlipG0Dyn", func(b *testing.B) {
		r := benchRun(b, kernel, omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0, Sched: omp.Dynamic})
		sh := r.Breakdown.Shares()
		b.ReportMetric(100*sh[stats.CatSched], "sched-%")
	})
}

func BenchmarkFig4BT(b *testing.B) { benchFig4(b, "BT") }
func BenchmarkFig4CG(b *testing.B) { benchFig4(b, "CG") }
func BenchmarkFig4MG(b *testing.B) { benchFig4(b, "MG") }
func BenchmarkFig4SP(b *testing.B) { benchFig4(b, "SP") }

// ---- Figure 5: classification under dynamic scheduling -----------------------

func benchFig5(b *testing.B, kernel string) {
	p := benchParams()
	r := benchRun(b, kernel, omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0, Sched: omp.Dynamic})
	b.ReportMetric(100*r.Class.Share(stats.RoleA, stats.ReqRead, stats.OutTimely), "A-timely-read-%")
	b.ReportMetric(100*r.Class.Share(stats.RoleA, stats.ReqRead, stats.OutLate), "A-late-read-%")
	b.ReportMetric(100*r.Class.Share(stats.RoleA, stats.ReqReadEx, stats.OutTimely), "A-timely-rdex-%")
}

func BenchmarkFig5CG(b *testing.B) { benchFig5(b, "CG") }
func BenchmarkFig5MG(b *testing.B) { benchFig5(b, "MG") }
func BenchmarkFig5SP(b *testing.B) { benchFig5(b, "SP") }

// ---- Suite throughput: the worker-pool runner --------------------------------

// benchStaticSuite runs the whole static matrix (5 kernels × 4 configs)
// through the experiments runner at a fixed worker count, so the
// sequential-vs-parallel wall-clock contrast shows up directly in ns/op.
func benchStaticSuite(b *testing.B, jobs int) {
	o := experiments.DefaultOptions()
	o.Nodes = benchNodes
	o.Scale = npb.ScaleTest
	o.Jobs = jobs
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunStatic(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteStaticSequential(b *testing.B) { benchStaticSuite(b, 1) }
func BenchmarkSuiteStaticParallel(b *testing.B)   { benchStaticSuite(b, 0) } // 0 = one worker per CPU

// ---- Ablations (DESIGN.md design-choice benches) -----------------------------

// Token-count sweep: how far ahead the A-stream may run (local sync).
func BenchmarkAblationTokens(b *testing.B) {
	p := benchParams()
	for _, tok := range []int{0, 1, 2, 4} {
		cfg := omp.Config{Machine: p, Mode: core.ModeSlipstream,
			Slipstream: core.Config{Type: core.LocalSync, Tokens: tok}}
		b.Run(core.Config{Type: core.LocalSync, Tokens: tok}.String(), func(b *testing.B) {
			benchRun(b, "MG", cfg)
		})
	}
}

// Self-invalidation on/off under zero-token global sync.
func BenchmarkAblationSelfInvalidation(b *testing.B) {
	p := benchParams()
	for _, si := range []bool{false, true} {
		name := "off"
		if si {
			name = "on"
		}
		cfg := omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0, SelfInvalidate: si}
		b.Run(name, func(b *testing.B) { benchRun(b, "CG", cfg) })
	}
}

// Guided vs dynamic scheduling under slipstream.
func BenchmarkAblationGuided(b *testing.B) {
	p := benchParams()
	for _, sched := range []omp.Schedule{omp.Dynamic, omp.Guided} {
		cfg := omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0, Sched: sched}
		b.Run(sched.String(), func(b *testing.B) { benchRun(b, "MG", cfg) })
	}
}

// Mesh vs fixed-delay interconnect (topology ablation).
func BenchmarkAblationTopology(b *testing.B) {
	for _, topo := range []machine.Topology{machine.TopoFixed, machine.TopoMesh2D} {
		p := benchParams()
		p.Topology = topo
		cfg := omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0}
		b.Run(topo.String(), func(b *testing.B) { benchRun(b, "MG", cfg) })
	}
}

// Affinity vs dynamic scheduling on an imbalanced workload.
func BenchmarkAblationAffinity(b *testing.B) {
	p := benchParams()
	for _, name := range []string{"dynamic", "affinity"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var last uint64
			for i := 0; i < b.N; i++ {
				rt, err := omp.New(omp.Config{Machine: p, Mode: core.ModeSingle})
				if err != nil {
					b.Fatal(err)
				}
				const tasks = 256
				out := rt.NewF64(tasks)
				err = rt.Run(func(m *omp.Thread) {
					m.Parallel(func(t *omp.Thread) {
						body := func(task int) {
							t.Compute(uint64(20 * (1 + 6*task/tasks)))
							t.StF(out, task, 1)
						}
						if name == "affinity" {
							t.ForAffinity(4, 0, tasks, body)
						} else {
							t.ForSched(omp.Dynamic, 4, 0, tasks, false, body)
						}
					})
				})
				if err != nil {
					b.Fatal(err)
				}
				last = rt.M.WallTime()
			}
			b.ReportMetric(float64(last), "sim-cycles")
		})
	}
}

// ---- Tasking tier: task tree vs loop baseline --------------------------------

// Fig2-style cells for the tasking study: the recursive TREE task kernel
// (default cut-off) and its TREEL loop baseline, single vs slipstream-G0,
// with the deque counters attached so the ratchet also pins scheduler
// behavior — a steal-count change means the victim-selection or publish
// protocol moved, not just timing.
func benchTasks(b *testing.B, kernel string) {
	p := benchParams()
	for _, tc := range []struct {
		name string
		cfg  omp.Config
	}{
		{"Single", omp.Config{Machine: p, Mode: core.ModeSingle}},
		{"SlipG0", omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			r := benchRun(b, kernel, tc.cfg)
			b.ReportMetric(float64(r.TasksRun), "tasks")
			b.ReportMetric(float64(r.Steals), "steals")
		})
	}
}

func BenchmarkTasksTREE(b *testing.B)  { benchTasks(b, "TREE") }
func BenchmarkTasksTREEL(b *testing.B) { benchTasks(b, "TREEL") }
func BenchmarkTasksEPT(b *testing.B)   { benchTasks(b, "EPT") }

// EP extension: static vs dynamic under imbalance (the §3.2.2 claim).
func BenchmarkExtensionEP(b *testing.B) {
	p := benchParams()
	for _, tc := range []struct {
		name  string
		sched omp.Schedule
	}{{"Static", omp.Static}, {"Dynamic", omp.Dynamic}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var last uint64
			for i := 0; i < b.N; i++ {
				rt, err := omp.New(omp.Config{Machine: p, Mode: core.ModeSingle, Sched: tc.sched, Chunk: 2})
				if err != nil {
					b.Fatal(err)
				}
				inst := npb.BuildEPImbalanced(rt, npb.ScaleTest)
				if err := rt.Run(inst.Program); err != nil {
					b.Fatal(err)
				}
				if err := inst.Verify(); err != nil {
					b.Fatal(err)
				}
				last = rt.M.WallTime()
			}
			b.ReportMetric(float64(last), "sim-cycles")
		})
	}
}

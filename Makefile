# Build / verification entry points. `make verify` is the full gate the
# suite-robustness work relies on: tier-1 build+test, vet, and a race pass
# over the worker-pool packages.

GO ?= go

.PHONY: build test test-short vet race verify bench bench-check smoke smoke-fleet smoke-ha smoke-overload fuzz sim-cluster sim-cluster-deep

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# The experiment runner, pool, validate checkup, slipd server, journal
# store, retrying client, fleet coordinator, the sim engine's pooled
# context workers, and the omp task deques (concurrent steals under
# injected stragglers) fan work out across goroutines; keep them
# race-clean. -short skips only the paper-scale shape tests (simulation
# numbers, no extra concurrency), so every racy path is still exercised
# and the instrumented run stays within the go test timeout.
race:
	$(GO) test -race -short ./internal/sim/... ./internal/experiments/... ./internal/pool/... ./internal/validate/... ./internal/server/... ./internal/store/... ./internal/client/... ./internal/cluster/... ./internal/omp/...

verify: build test vet race

# Benchmark baselines are committed as BENCH_PR$(PR).json, one per PR that
# moves performance. BENCHTIME is multi-iteration on purpose: -benchtime=1x
# made ns/op a single noisy sample and the ratchet flapped.
PR ?= 7
BENCH_OUT ?= BENCH_PR$(PR).json
BENCHTIME ?= 3x
BENCH_COUNT ?= 2

# Refuse to overwrite a committed baseline: regenerating an old
# BENCH_PRn.json in place silently rewrites history the ratchet gates
# against. Pick a new BENCH_OUT (or PR=n+1), or pass FORCE=1 to refresh a
# baseline intentionally.
bench:
	@if [ -z "$(FORCE)" ] && git ls-files --error-unmatch $(BENCH_OUT) >/dev/null 2>&1; then \
		echo "bench: $(BENCH_OUT) is a committed baseline; set BENCH_OUT/PR for a new file or FORCE=1 to overwrite"; \
		exit 1; \
	fi
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -count=$(BENCH_COUNT) -run '^$$' . | $(GO) run ./tools/benchjson -o $(BENCH_OUT)

# CI perf ratchet: run the suite into an untracked candidate file and
# compare against the newest committed BENCH_PRn.json. allocs/op is
# deterministic in this simulator, so it gets the tight 10% gate; ns/op
# varies 10-20% run to run even on an idle host, so its default gate only
# catches gross slowdowns (tighten with NS_TOL=0.10 on a quiet machine).
NS_TOL ?= 0.30
ALLOCS_TOL ?= 0.10
bench-check:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -count=$(BENCH_COUNT) -run '^$$' . | $(GO) run ./tools/benchjson -o BENCH_candidate.json
	$(GO) run ./tools/benchdiff -baseline latest -new BENCH_candidate.json -ns-tol $(NS_TOL) -allocs-tol $(ALLOCS_TOL)

# Short fuzz passes over the parser surfaces (one target per invocation:
# the go tool runs a single fuzz target at a time).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseSpec -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzCampaignSpec -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzParseEnv -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzPentaSolve -fuzztime 10s ./internal/npb
	$(GO) test -run '^$$' -fuzz FuzzJournalReplay -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzClusterWire -fuzztime 10s ./internal/cluster
	$(GO) test -run '^$$' -fuzz FuzzClaimWire -fuzztime 10s ./internal/cluster
	$(GO) test -run '^$$' -fuzz FuzzClaimMerge -fuzztime 10s ./internal/cluster

# Seeded cluster simulation sweep (internal/cluster/simtest): every
# schedule runs real coordinators/workers/claimers over the netchaos
# fabric — crashes, partitions, loss, duplication, clock skew — and the
# invariant checker must stay silent. A failing seed reproduces alone:
# `go run ./tools/clustersim -start <seed> -seeds 1 -v`.
SIM_SEEDS ?= 500
SIM_START ?= 1
sim-cluster:
	$(GO) run ./tools/clustersim -start $(SIM_START) -seeds $(SIM_SEEDS)

# Extended soak: more seeds, longer horizons, heavier weather.
sim-cluster-deep:
	$(GO) run ./tools/clustersim -start $(SIM_START) -seeds 2000 -horizon 800ms \
		-chaos 'drop=0.08,delay=0.2:1ms:12ms,dup=0.05,reorder=0.05,skew=25ms'

# End-to-end: boot a real slipd, drive one job over HTTP, cancel one,
# then SIGKILL it mid-job and assert the restart recovers the journal.
smoke:
	mkdir -p bin
	$(GO) build -o bin/slipd ./cmd/slipd
	$(GO) run ./tools/smoke bin/slipd

# Fleet drill: coordinator + 2 workers on the pull path, SIGKILL the
# worker holding a claim and require the survivor to finish the job
# byte-identically via lease expiry; then a zero-worker coordinator must
# execute locally in degraded mode.
smoke-fleet:
	mkdir -p bin
	$(GO) build -o bin/slipd ./cmd/slipd
	$(GO) run ./tools/smokefleet bin/slipd fleet

# HA drill: two peered coordinators, SIGKILL the one that granted the
# in-flight lease; the survivor's replicated lease must expire, be
# reclaimed by a worker, and settle with byte-identical result bytes and
# zero stranded claims.
smoke-ha:
	mkdir -p bin
	$(GO) build -o bin/slipd ./cmd/slipd
	$(GO) run ./tools/smokefleet bin/slipd ha

# Overload drill: a rate-limited flood tenant is refused 429 with
# Retry-After while a probe tenant's job completes untouched; a
# halt-policy campaign deterministically skips its pending cell after a
# mid-run cancellation; the probe result is byte-identical to the same
# spec on an unloaded instance.
smoke-overload:
	mkdir -p bin
	$(GO) build -o bin/slipd ./cmd/slipd
	$(GO) run ./tools/smokeoverload bin/slipd

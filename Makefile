# Build / verification entry points. `make verify` is the full gate the
# suite-robustness work relies on: tier-1 build+test, vet, and a race pass
# over the worker-pool packages.

GO ?= go

.PHONY: build test test-short vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# The experiment runner, pool, and validate checkup fan work out across
# goroutines; keep them race-clean.
race:
	$(GO) test -race ./internal/experiments/... ./internal/pool/... ./internal/validate/...

verify: build test vet race

bench:
	$(GO) test -bench=. -benchmem

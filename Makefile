# Build / verification entry points. `make verify` is the full gate the
# suite-robustness work relies on: tier-1 build+test, vet, and a race pass
# over the worker-pool packages.

GO ?= go

.PHONY: build test test-short vet race verify bench smoke smoke-fleet fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# The experiment runner, pool, validate checkup, slipd server, journal
# store, retrying client, and fleet coordinator fan work out across
# goroutines; keep them race-clean. -short skips only the paper-scale
# shape tests (simulation numbers, no extra concurrency), so every racy
# path is still exercised and the instrumented run stays within the go
# test timeout.
race:
	$(GO) test -race -short ./internal/experiments/... ./internal/pool/... ./internal/validate/... ./internal/server/... ./internal/store/... ./internal/client/... ./internal/cluster/...

verify: build test vet race

# One iteration per benchmark keeps this quick; the JSON lands in
# BENCH_PR2.json for diffable tracking across PRs.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' . | $(GO) run ./tools/benchjson -o BENCH_PR2.json

# Short fuzz passes over the parser surfaces (one target per invocation:
# the go tool runs a single fuzz target at a time).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseSpec -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzParseEnv -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzPentaSolve -fuzztime 10s ./internal/npb
	$(GO) test -run '^$$' -fuzz FuzzJournalReplay -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzClusterWire -fuzztime 10s ./internal/cluster

# End-to-end: boot a real slipd, drive one job over HTTP, cancel one,
# then SIGKILL it mid-job and assert the restart recovers the journal.
smoke:
	mkdir -p bin
	$(GO) build -o bin/slipd ./cmd/slipd
	$(GO) run ./tools/smoke bin/slipd

# Fleet drill: coordinator + 2 workers, SIGKILL the worker mid-job and
# require the survivor to finish it byte-identically; then a zero-worker
# coordinator must execute locally in degraded mode.
smoke-fleet:
	mkdir -p bin
	$(GO) build -o bin/slipd ./cmd/slipd
	$(GO) run ./tools/smokefleet bin/slipd

// Scaling: the paper's motivating experiment. A fixed-size problem is run
// on growing machines in all three modes. Speedup from extra CMPs
// saturates (and then reverses) for single and double mode once
// communication dominates; slipstream keeps improving because the second
// processor of each CMP attacks latency instead of splitting the work.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/npb"
)

func main() {
	kernel := "MG"
	if len(os.Args) > 1 {
		kernel = os.Args[1]
	}
	// jobs = 0: fan the independent (machine size × mode) runs out over
	// every host CPU; the rows come back in deterministic order anyway.
	rows, err := experiments.RunScaling(kernel, []int{2, 4, 8, 16}, npb.ScaleSmall, 0, true, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintScaling(kernel, rows, os.Stdout)

	// Find where doubling the tasks stops paying.
	fmt.Println()
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		if cur.Walls["double"] >= prev.Walls["double"] && cur.Walls["slip-G0"] < prev.Walls["slip-G0"] {
			fmt.Printf("between %d and %d CMPs, double mode stops scaling while slipstream still improves —\n",
				prev.Nodes, cur.Nodes)
			fmt.Println("the regime the paper targets (\"apply additional resources to reduce")
			fmt.Println("communication overhead, rather than to increase parallelism\").")
			return
		}
	}
	last := rows[len(rows)-1]
	fmt.Printf("at %d CMPs: single=%d double=%d slipstream=%d cycles\n",
		last.Nodes, last.Walls["single"], last.Walls["double"], last.Walls["slip-G0"])
}

// Stencil: a 2-D Jacobi iteration — the classic workload whose fixed-size
// scaling stalls once communication overhead dominates (the paper's
// motivating scenario). The example sweeps execution modes and slipstream
// token policies and prints the time breakdown and the A/R shared-request
// classification for each.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/shmem"
)

const (
	dim   = 192 // grid edge
	iters = 6
)

func jacobi(t *omp.Thread, a, b *shmem.F64) {
	t.For(1, dim-1, func(r int) {
		for c := 1; c < dim-1; c++ {
			id := r*dim + c
			v := 0.25 * (t.LdF(a, id-1) + t.LdF(a, id+1) + t.LdF(a, id-dim) + t.LdF(a, id+dim))
			t.StF(b, id, v)
			t.Compute(5)
		}
	})
}

type variant struct {
	name string
	cfg  omp.Config
}

func main() {
	p := machine.DefaultParams()
	variants := []variant{
		{"single", omp.Config{Machine: p, Mode: core.ModeSingle}},
		{"double", omp.Config{Machine: p, Mode: core.ModeDouble}},
		{"slipstream G0", omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0}},
		{"slipstream L1", omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.L1}},
		{"slipstream L2-tokens", omp.Config{Machine: p, Mode: core.ModeSlipstream,
			Slipstream: core.Config{Type: core.LocalSync, Tokens: 2}}},
		{"slipstream G0+selfinv", omp.Config{Machine: p, Mode: core.ModeSlipstream,
			Slipstream: core.G0, SelfInvalidate: true}},
	}

	var single uint64
	var ref []float64
	for _, v := range variants {
		rt, err := omp.New(v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		a := rt.NewF64(dim * dim)
		b := rt.NewF64(dim * dim)
		for i := 0; i < dim; i++ { // hot boundary row
			a.Set(i, 100)
			b.Set(i, 100)
		}
		err = rt.Run(func(m *omp.Thread) {
			for s := 0; s < iters; s++ {
				x, y := a, b
				if s%2 == 1 {
					x, y = b, a
				}
				m.Parallel(func(t *omp.Thread) { jacobi(t, x, y) })
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		if ref == nil && v.name == "single" {
			ref = append([]float64(nil), a.Data()...)
			single = rt.M.WallTime()
		} else if ref != nil {
			for i := range ref {
				if a.Data()[i] != ref[i] {
					log.Fatalf("%s: result diverged from single mode at %d", v.name, i)
				}
			}
		}
		wall := rt.M.WallTime()
		bd := rt.M.TotalBreakdown()
		fmt.Printf("%-22s %11d cycles  speedup %.3f\n  %s\n", v.name, wall, float64(single)/float64(wall), bd.String())
		if v.cfg.Mode == core.ModeSlipstream {
			fmt.Printf("%s\n", rt.M.Class.String())
		}
		fmt.Println()
	}
	fmt.Println("all modes produced bit-identical grids (A-streams never write shared memory).")
}

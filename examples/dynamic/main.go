// Dynamic: an imbalanced-workload loop under dynamic and guided
// scheduling. With slipstream enabled, the A-stream cannot know which
// chunks its R-stream will win, so at every scheduling point it blocks on
// the CMP's syscall semaphore until the R-stream publishes its decision
// (paper §3.2.2) — this example shows the handoff working and the
// resulting gains when memory stalls dominate.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/omp"
)

const (
	tasks = 256
	data  = 96 // elements touched per task
)

func main() {
	p := machine.DefaultParams()
	for _, sched := range []omp.Schedule{omp.Dynamic, omp.Guided} {
		fmt.Printf("== %v scheduling, chunk 4\n", sched)
		var base uint64
		for _, mode := range []core.Mode{core.ModeSingle, core.ModeSlipstream} {
			rt, err := omp.New(omp.Config{
				Machine: p, Mode: mode, Sched: sched, Chunk: 4, Slipstream: core.G0,
			})
			if err != nil {
				log.Fatal(err)
			}
			arr := rt.NewF64(tasks * data)
			out := rt.NewF64(tasks)
			err = rt.Run(func(m *omp.Thread) {
				m.Parallel(func(t *omp.Thread) {
					t.For(0, tasks, func(task int) {
						// Task cost varies 1x-8x: dynamic scheduling's reason
						// to exist.
						reps := 1 + (task*task)%8
						sum := 0.0
						for r := 0; r < reps; r++ {
							for i := 0; i < data; i++ {
								sum += t.LdF(arr, task*data+i)
								t.Compute(2)
							}
						}
						t.StF(out, task, sum)
					})
				})
			})
			if err != nil {
				log.Fatal(err)
			}
			wall := rt.M.WallTime()
			if mode == core.ModeSingle {
				base = wall
			}
			bd := rt.M.TotalBreakdown()
			fmt.Printf("  %-11s %11d cycles  speedup %.3f   %s\n",
				mode, wall, float64(base)/float64(wall), bd.String())
		}
		fmt.Println()
	}
	fmt.Println("the sched component is the serialized chunk handout plus, in")
	fmt.Println("slipstream mode, the R-to-A scheduling-decision handoff.")
}

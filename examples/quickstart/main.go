// Quickstart: run one parallel loop on the simulated CMP multiprocessor in
// all three execution modes and compare wall-clock cycles.
//
// The program smooths a shared vector in parallel. In slipstream mode each
// CMP runs the task redundantly: the A-stream skips shared stores and
// barriers (token-synchronized) and prefetches into the shared L2 for the
// R-stream.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/omp"
)

const (
	n     = 64 * 1024 // vector elements
	steps = 4         // smoothing iterations
)

func run(mode core.Mode) (uint64, error) {
	p := machine.DefaultParams() // 16 dual-processor CMPs, Table 1 latencies
	rt, err := omp.New(omp.Config{Machine: p, Mode: mode})
	if err != nil {
		return 0, err
	}
	src := rt.NewF64(n)
	dst := rt.NewF64(n)
	for i := 0; i < n; i++ {
		src.Set(i, float64(i%97))
	}
	err = rt.Run(func(m *omp.Thread) {
		for s := 0; s < steps; s++ {
			a, b := src, dst
			if s%2 == 1 {
				a, b = dst, src
			}
			m.Parallel(func(t *omp.Thread) {
				t.For(1, n-1, func(i int) {
					v := (t.LdF(a, i-1) + t.LdF(a, i) + t.LdF(a, i+1)) / 3
					t.StF(b, i, v)
					t.Compute(4)
				})
			})
		}
	})
	return rt.M.WallTime(), err
}

func main() {
	fmt.Printf("smoothing a %d-element shared vector, %d steps, 16 CMPs\n\n", n, steps)
	var single uint64
	for _, mode := range []core.Mode{core.ModeSingle, core.ModeDouble, core.ModeSlipstream} {
		wall, err := run(mode)
		if err != nil {
			log.Fatal(err)
		}
		if mode == core.ModeSingle {
			single = wall
		}
		fmt.Printf("%-11s %12d cycles   speedup vs single: %.3f\n",
			mode, wall, float64(single)/float64(wall))
	}
	fmt.Println("\nslipstream applies the second processor of each CMP to hide")
	fmt.Println("communication latency instead of splitting the work further.")
}

// Autotune: per-region selection of the A–R synchronization policy.
//
// The paper's results show "the sensitivity of performance to the type of
// A-R synchronization" and that each application "has a tendency to favor
// one synchronization scheme over the other", encouraging "further
// exploration to select different A-R synchronization for different
// parallel regions" (§5.1). This example does that exploration at runtime:
// an AutoTuner tries each candidate policy on each region of an iterative
// program and locks in the fastest per region.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/omp"
	"repro/internal/shmem"
)

const (
	n     = 32 * 1024
	iters = 12
)

// The program has two very different regions: a streaming sweep (benefits
// from a looser leash) and a producer-consumer exchange (prefers tight
// synchronization to avoid premature prefetches).
func step(m *omp.Thread, tu *core.AutoTuner, a, b *shmem.F64) {
	m.ParallelTuned(tu, "stream", func(t *omp.Thread) {
		t.For(0, n, func(i int) {
			t.StF(b, i, t.LdF(a, i)*1.0001)
			t.Compute(3)
		})
	})
	m.ParallelTuned(tu, "exchange", func(t *omp.Thread) {
		nth := t.Num()
		t.For(0, n, func(i int) {
			// Read a value produced by the "next" thread's block last region.
			j := (i + n/nth) % n
			t.StF(a, i, (t.LdF(b, i)+t.LdF(b, j))/2)
			t.Compute(4)
		})
	})
}

func main() {
	p := machine.DefaultParams()
	rt, err := omp.New(omp.Config{Machine: p, Mode: core.ModeSlipstream})
	if err != nil {
		log.Fatal(err)
	}
	tu := core.NewAutoTuner(
		core.G0,
		core.L1,
		core.Config{Type: core.LocalSync, Tokens: 2},
	)
	a := rt.NewF64(n)
	b := rt.NewF64(n)
	for i := 0; i < n; i++ {
		a.Set(i, float64(i%101))
	}
	if err := rt.Run(func(m *omp.Thread) {
		for it := 0; it < iters; it++ {
			step(m, tu, a, b)
		}
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d iterations of two regions on 16 CMPs (%d cycles)\n\n", iters, rt.M.WallTime())
	fmt.Println("per-region choices after tuning:")
	fmt.Print(tu.Summary())
	if !tu.Settled() {
		log.Fatal("tuner failed to settle")
	}
}

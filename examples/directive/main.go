// Directive: per-region SLIPSTREAM directives and runtime control of a
// single binary through OMP_SLIPSTREAM (paper §3.3).
//
// The same program runs three times: once with slipstream configured
// globally from code, once with a per-region directive overriding the
// global setting for one communication-heavy region, and once disabled
// entirely via the environment string — no recompilation, same "binary".
//
//	go run ./examples/directive
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/omp"
)

const n = 48 * 1024

// program is the one "binary": a copy region, a reduce region, and a
// scaling region. regionDir, when non-nil, is attached to the middle
// region the way a source-level !$OMP SLIPSTREAM(...) annotation would be.
func program(rt *omp.Runtime, regionDir *core.Directive) (sum float64, err error) {
	a := rt.NewF64(n)
	b := rt.NewF64(n)
	for i := 0; i < n; i++ {
		a.Set(i, float64(i%13))
	}
	err = rt.Run(func(m *omp.Thread) {
		m.Parallel(func(t *omp.Thread) {
			t.For(0, n, func(i int) {
				t.StF(b, i, 2*t.LdF(a, i))
				t.Compute(2)
			})
		})
		m.ParallelD(regionDir, func(t *omp.Thread) {
			partial := 0.0
			t.ForNowait(0, n, func(i int) {
				partial += t.LdF(b, i)
				t.Compute(2)
			})
			s := t.ReduceSumF(partial)
			t.Master(func() {
				if !t.IsA() {
					sum = s
				}
			})
			t.Barrier()
		})
		m.Parallel(func(t *omp.Thread) {
			t.For(0, n, func(i int) {
				t.StF(a, i, t.LdF(b, i)/2)
				t.Compute(2)
			})
		})
	})
	return sum, err
}

func main() {
	p := machine.DefaultParams()
	cases := []struct {
		name string
		cfg  omp.Config
		dir  *core.Directive
	}{
		{
			name: "global G0 (from code)",
			cfg:  omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0},
		},
		{
			name: "region directive LOCAL_SYNC,2 on the reduce region",
			cfg:  omp.Config{Machine: p, Mode: core.ModeSlipstream, Slipstream: core.G0},
			dir:  &core.Directive{Type: core.LocalSync, Tokens: 2, HasTokens: true},
		},
		{
			name: "OMP_SLIPSTREAM=NONE (same binary, slipstream off)",
			cfg:  omp.Config{Machine: p, Mode: core.ModeSlipstream, Env: "NONE"},
		},
		{
			name: "OMP_SLIPSTREAM=LOCAL_SYNC,1 (runtime-selected sync)",
			cfg:  omp.Config{Machine: p, Mode: core.ModeSlipstream, Env: "LOCAL_SYNC,1"},
		},
	}
	want := 0.0
	for _, c := range cases {
		rt, err := omp.New(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		sum, err := program(rt, c.dir)
		if err != nil {
			log.Fatal(err)
		}
		if want == 0 {
			want = sum
		} else if sum != want {
			log.Fatalf("%s: reduction %v != %v", c.name, sum, want)
		}
		fmt.Printf("%-52s %11d cycles  (reduction %.0f)\n", c.name, rt.M.WallTime(), sum)
	}
	fmt.Println("\nall four runs computed the same result; only the slipstream")
	fmt.Println("policy differed, selected per region or at 'launch time'.")
}

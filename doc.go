// Package repro is a Go reproduction of "Extending OpenMP to Support
// Slipstream Execution Mode" (Ibrahim & Byrd, IPPS 2003).
//
// It contains a deterministic discrete-event simulator of a CMP-based
// distributed shared-memory multiprocessor (internal/sim, internal/cache,
// internal/directory, internal/machine), an OpenMP-style runtime in the
// shape of the Omni compiler's runtime library (internal/omp), the
// slipstream execution-mode controller that is the paper's contribution
// (internal/core), scaled-down ports of the NAS Parallel Benchmark kernels
// BT, CG, LU, MG and SP (internal/npb), and a harness that regenerates the
// paper's tables and figures (internal/experiments, cmd/slipsim).
//
// The benchmarks in bench_test.go index the paper's evaluation: one
// benchmark per table and figure, reporting simulated cycles and the
// derived series as benchmark metrics.
package repro
